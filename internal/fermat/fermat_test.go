package fermat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"molq/internal/geom"
)

func wp(x, y, w float64) WeightedPoint {
	return WeightedPoint{P: geom.Pt(x, y), W: w}
}

// bruteforce minimises the cost over a fine grid around the points, refining
// twice; good to ~1e-4 relative for test comparisons.
func bruteforce(pts []WeightedPoint) (geom.Point, float64) {
	r := geom.EmptyRect()
	for _, p := range pts {
		r = r.ExtendPoint(p.P)
	}
	if r.Width() == 0 && r.Height() == 0 {
		return pts[0].P, 0
	}
	best := r.Center()
	bestCost := Cost(best, pts)
	span := math.Max(r.Width(), r.Height())
	center := best
	for level := 0; level < 8; level++ {
		const grid = 32
		for i := 0; i <= grid; i++ {
			for j := 0; j <= grid; j++ {
				q := geom.Point{
					X: center.X - span/2 + span*float64(i)/grid,
					Y: center.Y - span/2 + span*float64(j)/grid,
				}
				if c := Cost(q, pts); c < bestCost {
					best, bestCost = q, c
				}
			}
		}
		center = best
		span /= 8
	}
	return best, bestCost
}

func TestSolveErrors(t *testing.T) {
	if _, err := Solve(nil, Options{}); err != ErrNoPoints {
		t.Fatalf("want ErrNoPoints, got %v", err)
	}
}

func TestSinglePoint(t *testing.T) {
	res, err := Solve([]WeightedPoint{wp(3, 4, 2)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Loc.Eq(geom.Pt(3, 4)) || res.Cost != 0 || !res.Exact {
		t.Fatalf("unexpected result %+v", res)
	}
}

func TestTwoPointsHeavierWins(t *testing.T) {
	res, _ := Solve([]WeightedPoint{wp(0, 0, 1), wp(10, 0, 3)}, Options{})
	if !res.Loc.Eq(geom.Pt(10, 0)) {
		t.Fatalf("optimum should sit at the heavier point, got %v", res.Loc)
	}
	if math.Abs(res.Cost-10) > 1e-12 {
		t.Fatalf("cost = %v, want 10", res.Cost)
	}
}

func TestThreePointsEquilateralUnitWeights(t *testing.T) {
	// Equilateral triangle with unit weights: optimum is the centroid
	// (also the Torricelli point), each side seen under 120°.
	h := math.Sqrt(3) / 2
	pts := []WeightedPoint{wp(0, 0, 1), wp(1, 0, 1), wp(0.5, h, 1)}
	res, _ := Solve(pts, Options{})
	want := geom.Pt(0.5, h/3)
	if res.Loc.Dist(want) > 1e-9 {
		t.Fatalf("equilateral optimum = %v, want %v", res.Loc, want)
	}
	if !res.Exact {
		t.Fatal("three-point case should use the exact path")
	}
}

func TestThreePointsVertexDominance(t *testing.T) {
	// One overwhelming weight pins the optimum at that vertex.
	pts := []WeightedPoint{wp(0, 0, 100), wp(1, 0, 1), wp(0, 1, 1)}
	res, _ := Solve(pts, Options{})
	if !res.Loc.Eq(geom.Pt(0, 0)) {
		t.Fatalf("vertex dominance failed, got %v", res.Loc)
	}
}

func TestThreePointsObtuse(t *testing.T) {
	// With an angle ≥ 120° at a vertex (unit weights), that vertex is
	// optimal.
	pts := []WeightedPoint{wp(0, 0, 1), wp(10, 0.1, 1), wp(-10, 0.1, 1)}
	res, _ := Solve(pts, Options{})
	if !res.Loc.Eq(geom.Pt(0, 0)) {
		t.Fatalf("obtuse vertex should be optimal, got %v", res.Loc)
	}
}

func TestCollinearWeightedMedian(t *testing.T) {
	pts := []WeightedPoint{wp(0, 0, 1), wp(2, 0, 1), wp(4, 0, 1), wp(6, 0, 5)}
	res, _ := Solve(pts, Options{})
	if !res.Loc.Eq(geom.Pt(6, 0)) {
		t.Fatalf("weighted median should be (6,0), got %v", res.Loc)
	}
	if !res.Exact {
		t.Fatal("collinear case should be exact")
	}
}

func TestCollinearDiagonal(t *testing.T) {
	pts := []WeightedPoint{wp(0, 0, 1), wp(1, 1, 1), wp(2, 2, 1), wp(3, 3, 1), wp(4, 4, 1)}
	res, _ := Solve(pts, Options{})
	if res.Loc.Dist(geom.Pt(2, 2)) > 1e-9 {
		t.Fatalf("diagonal median should be (2,2), got %v", res.Loc)
	}
}

func TestWeiszfeldMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 4 + r.Intn(6)
		pts := make([]WeightedPoint, n)
		for i := range pts {
			pts[i] = wp(r.Float64()*100, r.Float64()*100, 0.5+10*r.Float64())
		}
		res, err := Solve(pts, Options{Epsilon: 1e-6})
		if err != nil {
			t.Fatal(err)
		}
		_, bfCost := bruteforce(pts)
		if res.Cost > bfCost*(1+1e-3) {
			t.Fatalf("trial %d: weiszfeld cost %v far above brute force %v", trial, res.Cost, bfCost)
		}
	}
}

func TestLowerBoundNeverExceedsOptimum(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(5))}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(5)
		pts := make([]WeightedPoint, n)
		for i := range pts {
			pts[i] = wp(r.Float64()*50, r.Float64()*50, 0.1+5*r.Float64())
		}
		res, err := Solve(pts, Options{Epsilon: 1e-9})
		if err != nil {
			return false
		}
		// Lower bound evaluated at several arbitrary locations must not
		// exceed the (near-)optimal cost.
		for k := 0; k < 5; k++ {
			l := geom.Pt(r.Float64()*50, r.Float64()*50)
			if LowerBound(l, pts) > res.Cost*(1+1e-6)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestWeiszfeldCostDecreases(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	pts := make([]WeightedPoint, 8)
	for i := range pts {
		pts[i] = wp(r.Float64()*10, r.Float64()*10, 1+r.Float64())
	}
	q := centroid(pts)
	sc := spread(pts)
	prev := Cost(q, pts)
	for i := 0; i < 50; i++ {
		q = weiszfeldStep(pts, q, sc)
		c := Cost(q, pts)
		if c > prev+1e-9 {
			t.Fatalf("iteration %d increased cost: %v -> %v", i, prev, c)
		}
		prev = c
	}
}

func TestSolveBoundedPrunes(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	pts := make([]WeightedPoint, 6)
	for i := range pts {
		pts[i] = wp(100+r.Float64()*10, 100+r.Float64()*10, 1)
	}
	// Any location costs at least ~0; set an absurdly low bound so the
	// very first lower bound exceeds it.
	res, err := SolveBounded(pts, Options{}, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pruned {
		t.Fatalf("expected pruning, got %+v", res)
	}
	if res.Iters > 2 {
		t.Fatalf("pruning should trigger almost immediately, took %d iters", res.Iters)
	}
}

func TestSingularStartOnDemandPoint(t *testing.T) {
	// Centroid coincides with a demand point by construction.
	pts := []WeightedPoint{
		wp(0, 0, 1), wp(4, 0, 1), wp(0, 4, 1), wp(-4, 0, 1), wp(0, -4, 1), wp(0, 0, 1),
	}
	res, err := Solve(pts, Options{Epsilon: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Loc.Dist(geom.Pt(0, 0)) > 1e-6 {
		t.Fatalf("optimum should be the center, got %v", res.Loc)
	}
}

func TestAccelerationConvergesFaster(t *testing.T) {
	r := rand.New(rand.NewSource(88))
	plainIters, accIters := 0, 0
	for trial := 0; trial < 40; trial++ {
		n := 5 + r.Intn(6)
		pts := make([]WeightedPoint, n)
		for i := range pts {
			pts[i] = wp(r.Float64()*1000, r.Float64()*1000, 0.5+5*r.Float64())
		}
		plain, err := Solve(pts, Options{Epsilon: 1e-8})
		if err != nil {
			t.Fatal(err)
		}
		acc, err := Solve(pts, Options{Epsilon: 1e-8, Acceleration: 1.3})
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(acc.Cost-plain.Cost) / plain.Cost; rel > 1e-6 {
			t.Fatalf("trial %d: accelerated cost %v vs plain %v", trial, acc.Cost, plain.Cost)
		}
		plainIters += plain.Iters
		accIters += acc.Iters
	}
	if accIters >= plainIters {
		t.Fatalf("acceleration did not reduce iterations: %d vs %d", accIters, plainIters)
	}
	t.Logf("iterations: plain %d, accelerated %d (%.1f%%)",
		plainIters, accIters, 100*float64(accIters)/float64(plainIters))
}

func TestAccelerationClamped(t *testing.T) {
	// λ outside [1,2) must be clamped, not explode.
	pts := []WeightedPoint{wp(0, 0, 1), wp(10, 0, 1), wp(5, 8, 1), wp(5, 3, 1)}
	for _, lambda := range []float64{-3, 0.5, 2.0, 50} {
		res, err := Solve(pts, Options{Epsilon: 1e-6, Acceleration: lambda})
		if err != nil {
			t.Fatal(err)
		}
		want, _ := Solve(pts, Options{Epsilon: 1e-6})
		if math.Abs(res.Cost-want.Cost) > 1e-3*want.Cost {
			t.Fatalf("lambda=%v diverged: %v vs %v", lambda, res.Cost, want.Cost)
		}
	}
}

func TestBatchAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	groups := make([]Group, 40)
	for gi := range groups {
		n := 5
		g := make(Group, n)
		for i := range g {
			g[i] = wp(r.Float64()*1000, r.Float64()*1000, r.Float64()*10)
		}
		groups[gi] = g
	}
	opt := Options{Epsilon: 1e-4}
	cb, err := CostBoundBatch(groups, opt)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := SequentialBatch(groups, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(cb.Cost-seq.Cost) / seq.Cost; rel > 1e-3 {
		t.Fatalf("CB cost %v vs Original cost %v (rel %g)", cb.Cost, seq.Cost, rel)
	}
	if cb.Stats.Prefiltered+cb.Stats.PrunedGroups == 0 {
		t.Fatal("cost-bound batch should prune at least one group on this workload")
	}
	if cb.Stats.TotalIters >= seq.Stats.TotalIters {
		t.Fatalf("CB should iterate less: %d vs %d", cb.Stats.TotalIters, seq.Stats.TotalIters)
	}
}

func TestBatchEmpty(t *testing.T) {
	if _, err := CostBoundBatch(nil, Options{}); err != ErrNoPoints {
		t.Fatalf("want ErrNoPoints, got %v", err)
	}
	if _, err := SequentialBatch([]Group{{}}, Options{}); err != ErrNoPoints {
		t.Fatalf("want ErrNoPoints for all-empty groups, got %v", err)
	}
}

func TestBatchMixedFastPaths(t *testing.T) {
	groups := []Group{
		{wp(0, 0, 1)},                                        // single point
		{wp(0, 0, 1), wp(5, 0, 2)},                           // two points
		{wp(0, 0, 1), wp(4, 0, 1), wp(2, 3, 1)},              // three points
		{wp(0, 0, 1), wp(1, 0, 1), wp(2, 0, 1), wp(3, 0, 1)}, // collinear
	}
	res, err := CostBoundBatch(groups, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The zero-cost single point sets the bound; the 1- and 2-point groups
	// solve exactly (no prefilter below 3 points) and the 3-point and
	// collinear groups are discarded by the two-point prefilter.
	if res.Stats.ExactSolves != 2 || res.Stats.Prefiltered != 2 {
		t.Fatalf("want 2 exact solves + 2 prefiltered, got %+v", res.Stats)
	}
	if res.GroupIndex != 0 || res.Cost != 0 {
		t.Fatalf("single-point group should win with zero cost, got %+v", res)
	}
	// Without the cost bound every group takes its exact fast path.
	seq, err := SequentialBatch(groups, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Stats.ExactSolves != 4 {
		t.Fatalf("all 4 groups should use exact paths unbounded, got %+v", seq.Stats)
	}
}
