package fermat

import (
	"context"
	"math/rand"
	"testing"

	"molq/internal/geom"
)

// randomFlatInstance builds one multi-batch instance in both layouts: nv
// weight-vector problems over ng shared groups whose sizes run from empty
// through the 1/2/3-point fast paths to iterative sizes.
func randomFlatInstance(r *rand.Rand, ng, nv int, withOffsets bool) ([]BatchProblem, []FlatProblem, *FlatGroups) {
	sizes := make([]int, ng)
	for i := range sizes {
		switch r.Intn(6) {
		case 0:
			sizes[i] = 1
		case 1:
			sizes[i] = 2
		case 2:
			sizes[i] = 3
		default:
			sizes[i] = 4 + r.Intn(8)
		}
	}
	// One group in each instance is empty: both drivers must skip it.
	sizes[r.Intn(ng)] = 0

	fg := &FlatGroups{Starts: make([]int32, 0, ng+1)}
	base := make([][]geom.Point, ng)
	for gi, n := range sizes {
		fg.Starts = append(fg.Starts, int32(len(fg.X)))
		pts := make([]geom.Point, n)
		for k := range pts {
			pts[k] = geom.Pt(r.Float64()*100, r.Float64()*100)
		}
		base[gi] = pts
		for _, p := range pts {
			fg.X = append(fg.X, p.X)
			fg.Y = append(fg.Y, p.Y)
		}
	}
	fg.Starts = append(fg.Starts, int32(len(fg.X)))
	fg.PairDist = make([]float64, ng)
	for gi, pts := range base {
		if len(pts) >= 2 {
			fg.PairDist[gi] = pts[0].Dist(pts[1])
		}
	}

	aos := make([]BatchProblem, nv)
	flat := make([]FlatProblem, nv)
	for vi := 0; vi < nv; vi++ {
		w := make([]float64, len(fg.X))
		groups := make([]Group, ng)
		var offsets []float64
		if withOffsets {
			offsets = make([]float64, ng)
		}
		for gi, pts := range base {
			g := make(Group, len(pts))
			s := int(fg.Starts[gi])
			for k, p := range pts {
				wk := 0.1 + r.Float64()*3
				w[s+k] = wk
				g[k] = WeightedPoint{P: p, W: wk}
			}
			groups[gi] = g
			if withOffsets {
				offsets[gi] = r.Float64() * 5
			}
		}
		aos[vi] = BatchProblem{Groups: groups, Offsets: offsets, PairDist: fg.PairDist}
		flat[vi] = FlatProblem{Geom: fg, W: w, Offsets: offsets}
	}
	return aos, flat, fg
}

func checkBatchesEqual(t *testing.T, tag string, want, got []BatchResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", tag, len(got), len(want))
	}
	for vi := range want {
		w, g := want[vi], got[vi]
		if g.GroupIndex != w.GroupIndex {
			t.Fatalf("%s vector %d: winner group %d, want %d", tag, vi, g.GroupIndex, w.GroupIndex)
		}
		if g.Cost != w.Cost || g.Loc != w.Loc {
			t.Fatalf("%s vector %d: result (%v, %v), want (%v, %v)", tag, vi, g.Loc, g.Cost, w.Loc, w.Cost)
		}
	}
}

// TestFlatMultiBatchMatchesSlices cross-checks the flat multi-batch driver
// against the slice-of-structs one on random instances: same winners, same
// costs, bit for bit — both sequential and parallel, with and without
// offsets. Parallel pruning statistics are schedule-dependent, so only the
// results are compared.
func TestFlatMultiBatchMatchesSlices(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	ctx := context.Background()
	for trial := 0; trial < 30; trial++ {
		aos, flat, _ := randomFlatInstance(r, 3+r.Intn(20), 1+r.Intn(4), trial%2 == 1)
		for _, workers := range []int{1, 4} {
			want, err := CostBoundMultiBatchCtx(ctx, aos, Options{}, workers)
			if err != nil {
				t.Fatalf("trial %d workers %d: slice driver: %v", trial, workers, err)
			}
			got, err := CostBoundMultiBatchFlatCtx(ctx, flat, Options{}, workers)
			if err != nil {
				t.Fatalf("trial %d workers %d: flat driver: %v", trial, workers, err)
			}
			checkBatchesEqual(t, "multi", want, got)
			// Sequential scans share the warm-start order, so even the work
			// counters must agree.
			if workers == 1 {
				for vi := range want {
					if want[vi].Stats != got[vi].Stats {
						t.Fatalf("trial %d vector %d: flat stats %+v != %+v", trial, vi, got[vi].Stats, want[vi].Stats)
					}
				}
			}
		}
	}
}

// TestFlatBatchMatchesParallel cross-checks the single-problem flat driver
// against CostBoundBatchParallelCtx.
func TestFlatBatchMatchesParallel(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ctx := context.Background()
	for trial := 0; trial < 20; trial++ {
		aos, flat, _ := randomFlatInstance(r, 4+r.Intn(16), 1, trial%2 == 0)
		for _, workers := range []int{1, 4} {
			want, err := CostBoundBatchParallelCtx(ctx, aos[0].Groups, aos[0].Offsets, Options{}, workers)
			if err != nil {
				t.Fatalf("trial %d workers %d: slice driver: %v", trial, workers, err)
			}
			got, err := CostBoundBatchFlatCtx(ctx, flat[0], Options{}, workers)
			if err != nil {
				t.Fatalf("trial %d workers %d: flat driver: %v", trial, workers, err)
			}
			checkBatchesEqual(t, "single", []BatchResult{want}, []BatchResult{got})
		}
	}
}

// TestFlatValidation pins the error contract of the flat entry points.
func TestFlatValidation(t *testing.T) {
	ctx := context.Background()
	ok := FlatProblem{
		Geom: &FlatGroups{X: []float64{0, 1}, Y: []float64{0, 0}, Starts: []int32{0, 2}},
		W:    []float64{1, 2},
	}
	if _, err := CostBoundBatchFlatCtx(ctx, ok, Options{}, 1); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	cases := []struct {
		name string
		p    FlatProblem
		want error
	}{
		{"nil geom", FlatProblem{}, ErrNoPoints},
		{"empty geom", FlatProblem{Geom: &FlatGroups{Starts: []int32{0}}}, ErrNoPoints},
		{"weights length", FlatProblem{Geom: ok.Geom, W: []float64{1}}, ErrBadFlat},
		{"offsets length", FlatProblem{Geom: ok.Geom, W: ok.W, Offsets: []float64{0, 0}}, ErrBadOffsets},
		{"pairdist length", FlatProblem{
			Geom: &FlatGroups{X: ok.Geom.X, Y: ok.Geom.Y, Starts: ok.Geom.Starts, PairDist: []float64{1, 1}},
			W:    ok.W,
		}, ErrBadPairDist},
	}
	for _, tc := range cases {
		if _, err := CostBoundBatchFlatCtx(ctx, tc.p, Options{}, 1); err != tc.want {
			t.Errorf("%s: err %v, want %v", tc.name, err, tc.want)
		}
		if _, err := CostBoundMultiBatchFlatCtx(ctx, []FlatProblem{tc.p}, Options{}, 1); err != tc.want {
			t.Errorf("%s (multi): err %v, want %v", tc.name, err, tc.want)
		}
	}
}

// TestFlatCancellation checks a canceled context stops the flat drivers.
func TestFlatCancellation(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	_, flat, _ := randomFlatInstance(r, 64, 4, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CostBoundMultiBatchFlatCtx(ctx, flat, Options{}, 1); err != context.Canceled {
		t.Fatalf("sequential: err %v, want context.Canceled", err)
	}
	if _, err := CostBoundMultiBatchFlatCtx(ctx, flat, Options{}, 4); err != context.Canceled {
		t.Fatalf("parallel: err %v, want context.Canceled", err)
	}
	if _, err := CostBoundBatchFlatCtx(ctx, flat[0], Options{}, 4); err != context.Canceled {
		t.Fatalf("single: err %v, want context.Canceled", err)
	}
}

// TestFlatTwoPointExactness pins the flat 2-point fast path against solve2 on
// the same data: identical location and cost without gathering.
func TestFlatTwoPointExactness(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		a, b := geom.Pt(r.Float64()*10, r.Float64()*10), geom.Pt(r.Float64()*10, r.Float64()*10)
		wa, wb := 0.1+r.Float64(), 0.1+r.Float64()
		fg := &FlatGroups{X: []float64{a.X, b.X}, Y: []float64{a.Y, b.Y}, Starts: []int32{0, 2}}
		if i%2 == 0 {
			fg.PairDist = []float64{a.Dist(b)}
		}
		got, err := CostBoundBatchFlatCtx(context.Background(), FlatProblem{Geom: fg, W: []float64{wa, wb}}, Options{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := solve2([]WeightedPoint{{P: a, W: wa}, {P: b, W: wb}})
		if got.Loc != want.Loc || got.Cost != want.Cost {
			t.Fatalf("iter %d: flat 2-point (%v, %v) != solve2 (%v, %v)", i, got.Loc, got.Cost, want.Loc, want.Cost)
		}
	}
}
