// Package fermat solves weighted Fermat-Weber problems in the plane: given
// points p_i with positive weights w_i, find the location q minimising
// Σ w_i · d(q, p_i). It implements the techniques of Sec 2.3 and Sec 5.4 of
// the paper:
//
//   - the Weiszfeld iterative scheme (Eq 8/9) with singularity handling,
//   - the rectangular lower bound of Eq 10 (Love–Morris) used as the ε
//     stopping rule,
//   - exact fast paths for 1, 2 and 3 points and for collinear point sets,
//   - the cost-bound batch optimiser of Algorithm 5.
package fermat

import (
	"errors"
	"math"
	"sort"

	"molq/internal/geom"
)

// WeightedPoint is a Fermat-Weber demand point. Weight must be positive; in
// the MOLQ pipeline it is the multiplicative combination of the type weight
// w^t and the object weight w^o.
type WeightedPoint struct {
	P geom.Point
	W float64
}

// Options control the iterative solver.
type Options struct {
	// Epsilon is the relative error bound ε of the stopping rule: iteration
	// stops once (cost − lb)/lb ≤ ε where lb is the Eq-10 lower bound.
	// Zero means the DefaultEpsilon.
	Epsilon float64
	// MaxIter caps the number of Weiszfeld iterations (safety net). Zero
	// means DefaultMaxIter.
	MaxIter int
	// Acceleration over-relaxes each Weiszfeld step:
	// q' = q + λ·(f(q) − q) with λ = Acceleration. Ostresh (1978) proved
	// convergence of the over-relaxed iteration; under this package's
	// Eq-10 stopping rule the sweet spot is λ ≈ 1.2–1.3 (≈25% fewer
	// iterations on random instances) — larger values overshoot, which
	// weakens the per-iterate lower bound and delays the stopping test.
	// Zero means 1 (the paper's plain Eq-8 iteration); values are clamped
	// to [1, 1.5].
	Acceleration float64
}

// Defaults used when Options fields are zero.
const (
	DefaultEpsilon = 1e-3
	DefaultMaxIter = 10000
)

func (o Options) norm() Options {
	if o.Epsilon <= 0 {
		o.Epsilon = DefaultEpsilon
	}
	if o.MaxIter <= 0 {
		o.MaxIter = DefaultMaxIter
	}
	if o.Acceleration < 1 {
		o.Acceleration = 1
	}
	if o.Acceleration > 1.5 {
		o.Acceleration = 1.5
	}
	return o
}

// Result reports the outcome of a solve.
type Result struct {
	Loc        geom.Point
	Cost       float64
	LowerBound float64 // last Eq-10 lower bound (0 for exact fast paths)
	Iters      int     // Weiszfeld iterations performed
	Exact      bool    // solved by a closed-form / direct fast path
	Pruned     bool    // abandoned early by a cost bound (Alg 5)
}

// ErrNoPoints is returned when a solve receives an empty point set.
var ErrNoPoints = errors.New("fermat: empty point set")

// Cost evaluates the Fermat-Weber objective Σ w_i · d(q, p_i).
func Cost(q geom.Point, pts []WeightedPoint) float64 {
	sum := 0.0
	for _, wp := range pts {
		sum += wp.W * q.Dist(wp.P)
	}
	return sum
}

// Solve finds the weighted Fermat-Weber point of pts.
func Solve(pts []WeightedPoint, opt Options) (Result, error) {
	return solveBounded(pts, opt, math.Inf(1))
}

// SolveBounded behaves like Solve but abandons the iteration as soon as the
// Eq-10 lower bound proves the optimum cannot beat costBound (Algorithm 5's
// in-iteration pruning). A pruned result has Pruned=true and carries the last
// iterate. The 2-point prefilter of Alg 5 is the caller's responsibility (see
// CostBoundBatch).
func SolveBounded(pts []WeightedPoint, opt Options, costBound float64) (Result, error) {
	return solveBounded(pts, opt, costBound)
}

func solveBounded(pts []WeightedPoint, opt Options, costBound float64) (Result, error) {
	opt = opt.norm()
	switch len(pts) {
	case 0:
		return Result{}, ErrNoPoints
	case 1:
		return Result{Loc: pts[0].P, Cost: 0, Exact: true}, nil
	case 2:
		return solve2(pts), nil
	}
	if line, ok := collinear(pts); ok {
		return solveCollinear(pts, line), nil
	}
	if len(pts) == 3 {
		return solve3(pts), nil
	}
	return weiszfeld(pts, opt, costBound), nil
}

// solve2 handles the two-point problem: the optimum sits at the heavier
// point (any point of the segment for equal weights).
func solve2(pts []WeightedPoint) Result {
	a, b := pts[0], pts[1]
	loc := a.P
	if b.W > a.W {
		loc = b.P
	}
	return Result{Loc: loc, Cost: Cost(loc, pts), Exact: true}
}

// line describes the common carrier of a collinear point set.
type line struct {
	origin geom.Point
	dir    geom.Point // unit direction
}

// collinear reports whether all points lie on one line (within a relative
// tolerance) and returns that line.
func collinear(pts []WeightedPoint) (line, bool) {
	// Pick the farthest point from pts[0] as the direction anchor.
	origin := pts[0].P
	far, farD := origin, 0.0
	for _, wp := range pts[1:] {
		if d := origin.Dist2(wp.P); d > farD {
			far, farD = wp.P, d
		}
	}
	if farD == 0 {
		// All points coincide.
		return line{origin: origin, dir: geom.Pt(1, 0)}, true
	}
	dir := far.Sub(origin).Scale(1 / math.Sqrt(farD))
	tol := math.Sqrt(farD) * 1e-9
	for _, wp := range pts {
		v := wp.P.Sub(origin)
		if math.Abs(v.Cross(dir)) > tol {
			return line{}, false
		}
	}
	return line{origin: origin, dir: dir}, true
}

// solveCollinear computes the weighted median along the carrier line, which
// is an exact optimum in linear(ithmic) time (Chandrasekaran & Tamir).
func solveCollinear(pts []WeightedPoint, l line) Result {
	type proj struct {
		t float64
		w float64
	}
	ps := make([]proj, len(pts))
	total := 0.0
	for i, wp := range pts {
		ps[i] = proj{t: wp.P.Sub(l.origin).Dot(l.dir), w: wp.W}
		total += wp.W
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].t < ps[j].t })
	acc := 0.0
	med := ps[len(ps)-1].t
	for _, pr := range ps {
		acc += pr.w
		if acc >= total/2 {
			med = pr.t
			break
		}
	}
	loc := l.origin.Add(l.dir.Scale(med))
	return Result{Loc: loc, Cost: Cost(loc, pts), Exact: true}
}

// solve3 solves the weighted three-point problem exactly: a closed-form
// vertex-dominance test decides whether a vertex is optimal; otherwise the
// optimum is the interior stationary point, found by a damped Newton
// iteration on the strictly convex cost (quadratic convergence, constant
// work in practice — this substitutes for the geometric construction of
// Jalal & Krarup cited by the paper).
func solve3(pts []WeightedPoint) Result {
	// Vertex dominance: vertex i is optimal iff
	// ‖Σ_{j≠i} w_j·u_ij‖ ≤ w_i, with u_ij the unit vector from p_i to p_j.
	for i := 0; i < 3; i++ {
		var pull geom.Point
		ok := true
		for j := 0; j < 3; j++ {
			if j == i {
				continue
			}
			d := pts[j].P.Dist(pts[i].P)
			if d == 0 {
				ok = false // coincident points: fall through to Newton path
				break
			}
			pull = pull.Add(pts[j].P.Sub(pts[i].P).Scale(pts[j].W / d))
		}
		if ok && pull.Norm() <= pts[i].W+1e-12 {
			loc := pts[i].P
			return Result{Loc: loc, Cost: Cost(loc, pts), Exact: true}
		}
	}
	res := newton(pts, centroid(pts))
	res.Exact = true
	return res
}

func centroid(pts []WeightedPoint) geom.Point {
	var c geom.Point
	tw := 0.0
	for _, wp := range pts {
		c = c.Add(wp.P.Scale(wp.W))
		tw += wp.W
	}
	if tw == 0 {
		return pts[0].P
	}
	return c.Scale(1 / tw)
}

// newton minimises the Fermat-Weber cost from start using a damped Newton
// method. The caller guarantees the optimum is interior (no vertex optimal).
func newton(pts []WeightedPoint, start geom.Point) Result {
	q := start
	scale := 0.0
	for _, wp := range pts {
		scale = math.Max(scale, wp.P.Sub(start).Norm())
	}
	if scale == 0 {
		scale = 1
	}
	const maxIter = 100
	iters := 0
	for ; iters < maxIter; iters++ {
		var g geom.Point
		var hxx, hxy, hyy float64
		singular := false
		for _, wp := range pts {
			d := q.Dist(wp.P)
			if d < 1e-15*scale {
				singular = true
				break
			}
			r := q.Sub(wp.P).Scale(1 / d)
			g = g.Add(r.Scale(wp.W))
			f := wp.W / d
			hxx += f * (1 - r.X*r.X)
			hxy += f * (-r.X * r.Y)
			hyy += f * (1 - r.Y*r.Y)
		}
		if singular {
			// Nudge off the singular point and retry.
			q = q.Add(geom.Pt(1e-9*scale, 1e-9*scale))
			continue
		}
		if g.Norm() <= 1e-13*totalWeight(pts) {
			break
		}
		det := hxx*hyy - hxy*hxy
		var step geom.Point
		if det > 1e-18 {
			step = geom.Point{
				X: -(hyy*g.X - hxy*g.Y) / det,
				Y: -(-hxy*g.X + hxx*g.Y) / det,
			}
		} else {
			step = g.Scale(-scale / math.Max(g.Norm(), 1e-300))
		}
		// Backtracking line search guards the (rare) non-contraction steps.
		base := Cost(q, pts)
		t := 1.0
		for k := 0; k < 40; k++ {
			cand := q.Add(step.Scale(t))
			if Cost(cand, pts) < base {
				q = cand
				break
			}
			t /= 2
			if k == 39 {
				return Result{Loc: q, Cost: base, Iters: iters}
			}
		}
	}
	return Result{Loc: q, Cost: Cost(q, pts), Iters: iters}
}

func totalWeight(pts []WeightedPoint) float64 {
	tw := 0.0
	for _, wp := range pts {
		tw += wp.W
	}
	return tw
}
