package interval

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkInsertDelete(b *testing.B) {
	r := rand.New(rand.NewSource(31))
	los := make([]float64, 4096)
	for i := range los {
		los[i] = r.Float64() * 1e6
	}
	b.ResetTimer()
	var tr Tree[int]
	for i := 0; i < b.N; i++ {
		lo := los[i%len(los)]
		tr.Insert(lo, lo+100, i, i)
		if tr.Len() > 2048 {
			old := i - 2048
			tr.Delete(los[old%len(los)], old)
		}
	}
}

func BenchmarkOverlapping(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		r := rand.New(rand.NewSource(32))
		var tr Tree[int]
		for i := 0; i < n; i++ {
			lo := r.Float64() * 1e6
			tr.Insert(lo, lo+1e6/float64(n)*4, i, i)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			hits := 0
			for i := 0; i < b.N; i++ {
				q := float64(i%1000) * 1e3
				tr.Overlapping(q, q+500, func(_, _ float64, _ int, _ int) bool {
					hits++
					return true
				})
			}
			_ = hits
		})
	}
}
