// Package interval implements an augmented balanced search tree over
// one-dimensional closed intervals. It is the status structure used by the
// plane-sweep overlap operation (Algorithms 2–4 in the paper): OVRs that
// currently intersect the sweep line are stored keyed by the start of their
// x-projection, and candidate detection asks for every stored interval whose
// x-range overlaps the incoming OVR's x-range.
//
// The tree is a treap (randomized BST) augmented with the subtree maximum of
// the interval end points, giving O(log n) expected insert/delete and
// O(log n + k) stabbing queries for k reported intervals.
package interval

// Tree is an interval tree mapping [Lo, Hi] intervals to values of type V.
// Entries are identified by (Lo, ID); the caller chooses IDs that are unique
// per stored entry. The zero value is an empty tree ready for use.
//
// Deleted nodes are kept on an internal freelist and reused by later inserts,
// so a tree that is pooled across sweeps (the status structures of the ⊕
// plane sweep) reaches a steady state where insertions allocate nothing.
type Tree[V any] struct {
	root *node[V]
	size int
	rng  uint64
	free *node[V] // recycled nodes, chained through their right pointers
}

type node[V any] struct {
	lo, hi float64
	id     int
	val    V
	prio   uint64
	maxHi  float64
	left   *node[V]
	right  *node[V]
}

// Len returns the number of stored intervals.
func (t *Tree[V]) Len() int { return t.size }

// nextPrio produces treap priorities from a xorshift64* generator so the tree
// stays balanced in expectation without importing math/rand.
func (t *Tree[V]) nextPrio() uint64 {
	if t.rng == 0 {
		t.rng = 0x9E3779B97F4A7C15
	}
	x := t.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	t.rng = x
	return x * 0x2545F4914F6CDD1D
}

// newNode pops a recycled node off the freelist, or allocates one.
func (t *Tree[V]) newNode(lo, hi float64, id int, val V) *node[V] {
	n := t.free
	if n == nil {
		n = new(node[V])
	} else {
		t.free = n.right
	}
	*n = node[V]{lo: lo, hi: hi, id: id, val: val, prio: t.nextPrio()}
	return n
}

// recycle pushes a detached node onto the freelist, dropping its payload so
// the tree does not retain references through pooled values.
func (t *Tree[V]) recycle(n *node[V]) {
	var zero V
	n.val = zero
	n.left = nil
	n.right = t.free
	t.free = n
}

// less orders entries by (lo, id).
func less[V any](aLo float64, aID int, b *node[V]) bool {
	if aLo != b.lo {
		return aLo < b.lo
	}
	return aID < b.id
}

func (n *node[V]) update() {
	n.maxHi = n.hi
	if n.left != nil && n.left.maxHi > n.maxHi {
		n.maxHi = n.left.maxHi
	}
	if n.right != nil && n.right.maxHi > n.maxHi {
		n.maxHi = n.right.maxHi
	}
}

func rotateRight[V any](n *node[V]) *node[V] {
	l := n.left
	n.left = l.right
	l.right = n
	n.update()
	l.update()
	return l
}

func rotateLeft[V any](n *node[V]) *node[V] {
	r := n.right
	n.right = r.left
	r.left = n
	n.update()
	r.update()
	return r
}

// Insert adds the interval [lo, hi] with identity id and payload val.
// Inserting an entry with a (lo, id) pair already present replaces its value.
func (t *Tree[V]) Insert(lo, hi float64, id int, val V) {
	inserted := false
	t.root, inserted = t.insert(t.root, lo, hi, id, val)
	if inserted {
		t.size++
	}
}

func (t *Tree[V]) insert(n *node[V], lo, hi float64, id int, val V) (*node[V], bool) {
	if n == nil {
		nn := t.newNode(lo, hi, id, val)
		nn.update()
		return nn, true
	}
	var inserted bool
	switch {
	case lo == n.lo && id == n.id:
		n.hi = hi
		n.val = val
		n.update()
		return n, false
	case less(lo, id, n):
		n.left, inserted = t.insert(n.left, lo, hi, id, val)
		if n.left.prio > n.prio {
			n = rotateRight(n)
		} else {
			n.update()
		}
	default:
		n.right, inserted = t.insert(n.right, lo, hi, id, val)
		if n.right.prio > n.prio {
			n = rotateLeft(n)
		} else {
			n.update()
		}
	}
	return n, inserted
}

// Delete removes the entry with start lo and identity id, reporting whether
// it was present. The removed node is recycled for reuse by later inserts.
func (t *Tree[V]) Delete(lo float64, id int) bool {
	deleted := false
	t.root, deleted = t.deleteNode(t.root, lo, id)
	if deleted {
		t.size--
	}
	return deleted
}

func (t *Tree[V]) deleteNode(n *node[V], lo float64, id int) (*node[V], bool) {
	if n == nil {
		return nil, false
	}
	var deleted bool
	switch {
	case lo == n.lo && id == n.id:
		merged := merge(n.left, n.right)
		t.recycle(n)
		return merged, true
	case less(lo, id, n):
		n.left, deleted = t.deleteNode(n.left, lo, id)
	default:
		n.right, deleted = t.deleteNode(n.right, lo, id)
	}
	n.update()
	return n, deleted
}

// Clear removes every entry, recycling all nodes. It leaves the tree ready
// for reuse with its freelist (and the priority generator state) intact —
// cheaper than dropping the tree when the caller pools it across runs.
func (t *Tree[V]) Clear() {
	t.clear(t.root)
	t.root = nil
	t.size = 0
}

func (t *Tree[V]) clear(n *node[V]) {
	if n == nil {
		return
	}
	l, r := n.left, n.right
	t.recycle(n) // rewrites n.right: detach children first
	t.clear(l)
	t.clear(r)
}

// merge joins two treaps where every key in a precedes every key in b.
func merge[V any](a, b *node[V]) *node[V] {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case a.prio > b.prio:
		a.right = merge(a.right, b)
		a.update()
		return a
	default:
		b.left = merge(a, b.left)
		b.update()
		return b
	}
}

// Overlapping calls fn for every stored interval [lo, hi] that intersects the
// closed query interval [qlo, qhi]. Iteration stops early if fn returns
// false.
func (t *Tree[V]) Overlapping(qlo, qhi float64, fn func(lo, hi float64, id int, val V) bool) {
	overlapping(t.root, qlo, qhi, fn)
}

func overlapping[V any](n *node[V], qlo, qhi float64, fn func(lo, hi float64, id int, val V) bool) bool {
	if n == nil || n.maxHi < qlo {
		return true
	}
	if !overlapping(n.left, qlo, qhi, fn) {
		return false
	}
	if n.lo <= qhi && n.hi >= qlo {
		if !fn(n.lo, n.hi, n.id, n.val) {
			return false
		}
	}
	if n.lo > qhi {
		// Every key in the right subtree starts even further right.
		return true
	}
	return overlapping(n.right, qlo, qhi, fn)
}

// Walk visits every entry in key order.
func (t *Tree[V]) Walk(fn func(lo, hi float64, id int, val V) bool) {
	walk(t.root, fn)
}

func walk[V any](n *node[V], fn func(lo, hi float64, id int, val V) bool) bool {
	if n == nil {
		return true
	}
	if !walk(n.left, fn) {
		return false
	}
	if !fn(n.lo, n.hi, n.id, n.val) {
		return false
	}
	return walk(n.right, fn)
}

// Height returns the height of the underlying tree (0 for empty); exposed for
// balance diagnostics in tests.
func (t *Tree[V]) Height() int { return height(t.root) }

func height[V any](n *node[V]) int {
	if n == nil {
		return 0
	}
	l, r := height(n.left), height(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
