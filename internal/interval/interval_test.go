package interval

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

type span struct {
	lo, hi float64
	id     int
}

func bruteOverlap(spans []span, qlo, qhi float64) []int {
	var out []int
	for _, s := range spans {
		if s.lo <= qhi && s.hi >= qlo {
			out = append(out, s.id)
		}
	}
	sort.Ints(out)
	return out
}

func collect(t *Tree[int], qlo, qhi float64) []int {
	var out []int
	t.Overlapping(qlo, qhi, func(_, _ float64, _ int, v int) bool {
		out = append(out, v)
		return true
	})
	sort.Ints(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTree(t *testing.T) {
	var tr Tree[int]
	if tr.Len() != 0 {
		t.Fatal("new tree not empty")
	}
	if got := collect(&tr, 0, 100); len(got) != 0 {
		t.Fatalf("query on empty tree returned %v", got)
	}
	if tr.Delete(1, 1) {
		t.Fatal("delete on empty tree succeeded")
	}
}

func TestInsertQueryDelete(t *testing.T) {
	var tr Tree[int]
	tr.Insert(0, 10, 1, 1)
	tr.Insert(5, 15, 2, 2)
	tr.Insert(20, 30, 3, 3)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if got := collect(&tr, 8, 9); !equalInts(got, []int{1, 2}) {
		t.Fatalf("query [8,9] = %v", got)
	}
	if got := collect(&tr, 16, 19); len(got) != 0 {
		t.Fatalf("gap query returned %v", got)
	}
	if got := collect(&tr, 10, 20); !equalInts(got, []int{1, 2, 3}) {
		t.Fatalf("touching query = %v (closed intervals should match)", got)
	}
	if !tr.Delete(5, 2) {
		t.Fatal("delete failed")
	}
	if got := collect(&tr, 8, 9); !equalInts(got, []int{1}) {
		t.Fatalf("after delete query = %v", got)
	}
}

func TestReplaceSameKey(t *testing.T) {
	var tr Tree[int]
	tr.Insert(1, 5, 7, 100)
	tr.Insert(1, 8, 7, 200)
	if tr.Len() != 1 {
		t.Fatalf("replace should not grow tree, Len = %d", tr.Len())
	}
	if got := collect(&tr, 7, 7); !equalInts(got, []int{200}) {
		t.Fatalf("replaced entry not visible: %v", got)
	}
}

func TestRandomAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	var tr Tree[int]
	var spans []span
	for i := 0; i < 500; i++ {
		lo := r.Float64() * 1000
		hi := lo + r.Float64()*100
		spans = append(spans, span{lo, hi, i})
		tr.Insert(lo, hi, i, i)
	}
	// Random deletes.
	for k := 0; k < 150; k++ {
		i := r.Intn(len(spans))
		s := spans[i]
		if tr.Delete(s.lo, s.id) {
			spans = append(spans[:i], spans[i+1:]...)
		}
	}
	if tr.Len() != len(spans) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(spans))
	}
	for q := 0; q < 300; q++ {
		qlo := r.Float64() * 1100
		qhi := qlo + r.Float64()*80
		want := bruteOverlap(spans, qlo, qhi)
		got := collect(&tr, qlo, qhi)
		if !equalInts(got, want) {
			t.Fatalf("query [%v,%v]: got %v want %v", qlo, qhi, got, want)
		}
	}
}

func TestQuickProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var tr Tree[int]
		var spans []span
		for i := 0; i < int(n)+1; i++ {
			lo := r.Float64() * 50
			hi := lo + r.Float64()*10
			spans = append(spans, span{lo, hi, i})
			tr.Insert(lo, hi, i, i)
		}
		qlo := r.Float64() * 60
		qhi := qlo + r.Float64()*20
		return equalInts(collect(&tr, qlo, qhi), bruteOverlap(spans, qlo, qhi))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEarlyStop(t *testing.T) {
	var tr Tree[int]
	for i := 0; i < 50; i++ {
		tr.Insert(float64(i), float64(i)+100, i, i)
	}
	count := 0
	tr.Overlapping(0, 200, func(_, _ float64, _ int, _ int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d entries", count)
	}
}

func TestWalkInOrder(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	var tr Tree[int]
	for i := 0; i < 200; i++ {
		lo := r.Float64() * 100
		tr.Insert(lo, lo+1, i, i)
	}
	prev := math.Inf(-1)
	tr.Walk(func(lo, _ float64, _ int, _ int) bool {
		if lo < prev {
			t.Fatalf("walk out of order: %v after %v", lo, prev)
		}
		prev = lo
		return true
	})
}

func TestTreeStaysBalanced(t *testing.T) {
	var tr Tree[int]
	// Sorted insertion is the worst case for an unbalanced BST.
	n := 1 << 14
	for i := 0; i < n; i++ {
		tr.Insert(float64(i), float64(i)+0.5, i, i)
	}
	// Expected treap height is O(log n); allow a generous constant.
	if h := tr.Height(); h > 5*15 {
		t.Fatalf("height %d too large for %d sorted inserts", h, n)
	}
}

// TestClearAndReuse checks Clear empties the tree and that reuse after Clear
// behaves like a fresh tree.
func TestClearAndReuse(t *testing.T) {
	var tr Tree[int]
	for round := 0; round < 3; round++ {
		for i := 0; i < 100; i++ {
			tr.Insert(float64(i), float64(i+10), i, i)
		}
		if tr.Len() != 100 {
			t.Fatalf("round %d: Len = %d, want 100", round, tr.Len())
		}
		got := 0
		tr.Overlapping(0, 1000, func(lo, hi float64, id, val int) bool { got++; return true })
		if got != 100 {
			t.Fatalf("round %d: query saw %d entries, want 100", round, got)
		}
		tr.Clear()
		if tr.Len() != 0 {
			t.Fatalf("round %d: Len after Clear = %d", round, tr.Len())
		}
		tr.Overlapping(0, 1000, func(lo, hi float64, id, val int) bool {
			t.Fatalf("round %d: cleared tree reported an entry", round)
			return false
		})
	}
}

// TestFreelistSteadyState checks that a tree which repeatedly fills and
// drains stops allocating nodes once the freelist has grown to the
// working-set size.
func TestFreelistSteadyState(t *testing.T) {
	var tr Tree[int]
	cycle := func() {
		for i := 0; i < 64; i++ {
			tr.Insert(float64(i), float64(i+5), i, i)
		}
		for i := 0; i < 64; i++ {
			if !tr.Delete(float64(i), i) {
				t.Fatalf("Delete(%d) missed", i)
			}
		}
	}
	cycle() // warm the freelist
	if avg := testing.AllocsPerRun(50, cycle); avg != 0 {
		t.Errorf("steady-state insert/delete cycle allocates %v/op, want 0", avg)
	}
}

// TestDeleteRecyclesIntoInsert checks deleted nodes actually come back from
// the freelist (pointer identity across a delete/insert pair).
func TestDeleteRecyclesIntoInsert(t *testing.T) {
	var tr Tree[int]
	tr.Insert(1, 2, 1, 11)
	n := tr.root
	tr.Delete(1, 1)
	tr.Insert(3, 4, 3, 33)
	if tr.root != n {
		t.Fatal("insert after delete did not reuse the recycled node")
	}
	if tr.root.lo != 3 || tr.root.val != 33 {
		t.Fatalf("recycled node carries stale state: %+v", tr.root)
	}
}
