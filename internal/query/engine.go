package query

import (
	"fmt"
	"time"

	"molq/internal/core"
	"molq/internal/fermat"
	"molq/internal/geom"
	"molq/internal/obs"
)

// Engine answers repeated MOLQs over a fixed set of POI data. The key
// observation (from the model itself) is that the MOVD depends only on
// object locations, object weights and the ς^o family — never on the type
// weights w^t, which enter the objective only through the optimizer's
// Fermat-Weber folding. Preparing an Engine therefore runs the VD Generator
// and MOVD Overlapper once; each Query call re-runs just the optimizer with
// fresh type weights, typically orders of magnitude cheaper.
type Engine struct {
	in     Input
	mode   core.Mode
	method Method
	movd   *core.MOVD
	combos [][]core.Object
	// prep captures how long Prepare took, for reporting.
	prepTime time.Duration
	// cacheStats records the diagram-cache lookups of the preparation.
	cacheStats CacheStats
}

// NewEngine prepares an engine for the given input evaluating with method
// (RRB or MBRB; SSC has no reusable state and is rejected). The TypeWeight
// values in the input's objects are placeholders — every Query overrides
// them — but object weights and ObjKinds are baked into the prepared MOVD.
func NewEngine(in Input, method Method) (*Engine, error) {
	if method != RRB && method != MBRB {
		return nil, fmt.Errorf("query: engine requires RRB or MBRB, got %v", method)
	}
	if err := in.validate(); err != nil {
		return nil, err
	}
	e := &Engine{in: in, method: method}
	e.mode = core.RRB
	if method == MBRB {
		e.mode = core.MBRB
	}
	start := time.Now()
	// Reuse the standard pipeline for modules 1-2 by running a solve with a
	// captured MOVD would recompute the optimizer; instead build directly.
	// Workers > 1 parallelises both modules exactly as Solve does.
	basics, fps, cacheStats, err := in.buildBasics(method, e.mode, nil)
	if err != nil {
		return nil, err
	}
	var stats core.OverlapStats
	acc, err := in.cachedOverlapChain(e.mode, nil, basics, fps, &stats, &cacheStats, nil)
	if err != nil {
		return nil, err
	}
	e.cacheStats = cacheStats
	e.movd = acc
	e.combos = acc.Groups()
	e.prepTime = time.Since(start)
	return e, nil
}

// PrepTime reports how long Prepare (VD generation + overlap) took.
func (e *Engine) PrepTime() time.Duration { return e.prepTime }

// CacheStats reports the diagram-cache hits and misses of the preparation's
// VD stage (Entries/Bytes snapshot the cache as of preparation time).
func (e *Engine) CacheStats() CacheStats { return e.cacheStats }

// OVRs returns the size of the prepared MOVD.
func (e *Engine) OVRs() int { return e.movd.Len() }

// Combinations returns the number of candidate object combinations the
// prepared MOVD admits.
func (e *Engine) Combinations() int { return len(e.combos) }

// Query answers the MOLQ with per-type weights w^t given in typeWeights
// (len must equal the number of object sets; all entries positive). Object
// weights and ς^o families are those baked in at preparation.
func (e *Engine) Query(typeWeights []float64) (Result, error) {
	if len(typeWeights) != len(e.in.Sets) {
		return Result{}, fmt.Errorf("query: %d type weights for %d sets", len(typeWeights), len(e.in.Sets))
	}
	for ti, w := range typeWeights {
		if w <= 0 {
			return Result{}, fmt.Errorf("%w (type %d)", ErrBadWeight, ti)
		}
	}
	res := Result{Method: e.method}
	var root *obs.Span
	if e.in.Trace {
		root = obs.StartSpan("engine-query/" + e.method.String())
		res.Stats.Trace = root
	}
	start := time.Now()
	groups := make([]fermat.Group, len(e.combos))
	offsets := make([]float64, len(e.combos))
	for i, combo := range e.combos {
		g := make(fermat.Group, len(combo))
		off := 0.0
		for j, o := range combo {
			wt := typeWeights[o.Type]
			if e.in.kind(o.Type) == AdditiveObjWeights {
				g[j] = fermat.WeightedPoint{P: o.Loc, W: wt}
				off += wt * o.ObjWeight
			} else {
				g[j] = fermat.WeightedPoint{P: o.Loc, W: wt * o.ObjWeight}
			}
		}
		groups[i] = g
		offsets[i] = off
	}
	var batch fermat.BatchResult
	var err error
	if e.in.Workers > 1 {
		batch, err = fermat.CostBoundBatchParallel(groups, offsets, e.in.options(), e.in.Workers)
	} else {
		batch, err = fermat.CostBoundBatchOffsets(groups, offsets, e.in.options())
	}
	if err != nil {
		return res, err
	}
	res.Loc = batch.Loc
	res.Cost = batch.Cost
	res.Stats.Groups = len(groups)
	res.Stats.OVRs = e.movd.Len()
	res.Stats.PointsManaged = e.movd.PointsManaged()
	res.Stats.Fermat = batch.Stats
	res.Stats.OptimizeTime = time.Since(start)
	res.Stats.TotalTime = res.Stats.OptimizeTime
	if root != nil {
		optSpan := root.Child("optimize")
		optSpan.SetAttr("groups", res.Stats.Groups)
		optSpan.SetAttr("weiszfeld_iters", batch.Stats.TotalIters)
		optSpan.EndWith(res.Stats.OptimizeTime)
		root.EndWith(res.Stats.TotalTime)
	}
	return res, nil
}

// MWGDAt scores an arbitrary candidate location under the given type
// weights (linear scan of the stored sets).
func (e *Engine) MWGDAt(q geom.Point, typeWeights []float64) float64 {
	total := 0.0
	for ti, set := range e.in.Sets {
		additive := e.in.kind(ti) == AdditiveObjWeights
		wt := 1.0
		if ti < len(typeWeights) {
			wt = typeWeights[ti]
		}
		best := -1.0
		for _, o := range set {
			var v float64
			if additive {
				v = wt * (q.Dist(o.Loc) + o.ObjWeight)
			} else {
				v = wt * o.ObjWeight * q.Dist(o.Loc)
			}
			if best < 0 || v < best {
				best = v
			}
		}
		if best >= 0 {
			total += best
		}
	}
	return total
}
