package query

import (
	"fmt"
	"time"

	"molq/internal/core"
	"molq/internal/fermat"
	"molq/internal/geom"
	"molq/internal/obs"
)

// Engine answers repeated MOLQs over a fixed set of POI data. The key
// observation (from the model itself) is that the MOVD depends only on
// object locations, object weights and the ς^o family — never on the type
// weights w^t, which enter the objective only through the optimizer's
// Fermat-Weber folding. Preparing an Engine therefore runs the VD Generator
// and MOVD Overlapper once; each Query call re-runs just the optimizer with
// fresh type weights, typically orders of magnitude cheaper.
type Engine struct {
	in     Input
	mode   core.Mode
	method Method
	movd   *core.MOVD
	combos [][]core.Object
	// flat is the combo-major flattening of combos, precomputed once so
	// every Query/QueryBatch call assembles its Fermat-Weber problems from
	// contiguous arrays (one slab allocation per weight vector) instead of
	// walking the nested combo slices. Read-only after preparation.
	flat engineFlat
	// prep captures how long Prepare took, for reporting.
	prepTime time.Duration
	// cacheStats records the diagram-cache lookups of the preparation.
	cacheStats CacheStats
}

// engineFlat is the amortized group/offset setup shared by all queries: the
// locations, object weights and types of every combo member concatenated,
// with starts[i] … starts[i+1] delimiting combo i. additive marks the ς^o
// family per type; anyAdditive short-circuits the offset scan for the
// common all-multiplicative case.
type engineFlat struct {
	pts         []geom.Point
	objW        []float64
	typ         []int32
	starts      []int32
	additive    []bool
	anyAdditive bool
	// pairDist[i] is the distance between the first two points of combo i
	// (0 for combos shorter than two points). It feeds the batched
	// optimizer's two-point prefilter, whose geometry is weight-independent:
	// one sqrt per combo at preparation instead of one per combo per vector.
	pairDist []float64
}

// finishPrep derives the flat combo representation; called once from
// NewEngine and LoadEngine after combos are known.
func (e *Engine) finishPrep() {
	n := 0
	for _, c := range e.combos {
		n += len(c)
	}
	f := &e.flat
	f.pts = make([]geom.Point, 0, n)
	f.objW = make([]float64, 0, n)
	f.typ = make([]int32, 0, n)
	f.starts = make([]int32, len(e.combos)+1)
	f.additive = make([]bool, len(e.in.Sets))
	for ti := range e.in.Sets {
		if e.in.kind(ti) == AdditiveObjWeights {
			f.additive[ti] = true
			f.anyAdditive = true
		}
	}
	f.pairDist = make([]float64, len(e.combos))
	for i, c := range e.combos {
		f.starts[i] = int32(len(f.pts))
		for _, o := range c {
			f.pts = append(f.pts, o.Loc)
			f.objW = append(f.objW, o.ObjWeight)
			f.typ = append(f.typ, int32(o.Type))
		}
		if len(c) >= 2 {
			f.pairDist[i] = c[0].Loc.Dist(c[1].Loc)
		}
	}
	f.starts[len(e.combos)] = int32(len(f.pts))
}

// problemFor assembles the Fermat-Weber batch for one weight vector from
// the flat representation. All group backing storage comes from one slab, so
// a vector costs three allocations regardless of combo count, and every call
// owns its slab outright — concurrent queries share nothing mutable.
func (e *Engine) problemFor(typeWeights []float64) ([]fermat.Group, []float64) {
	f := &e.flat
	slab := make([]fermat.WeightedPoint, len(f.pts))
	for i := range slab {
		ti := f.typ[i]
		w := typeWeights[ti]
		if f.additive[ti] {
			slab[i] = fermat.WeightedPoint{P: f.pts[i], W: w}
		} else {
			slab[i] = fermat.WeightedPoint{P: f.pts[i], W: w * f.objW[i]}
		}
	}
	groups := make([]fermat.Group, len(e.combos))
	offsets := make([]float64, len(e.combos))
	for ci := range groups {
		s, t := f.starts[ci], f.starts[ci+1]
		groups[ci] = fermat.Group(slab[s:t:t])
		if f.anyAdditive {
			off := 0.0
			for i := s; i < t; i++ {
				if f.additive[f.typ[i]] {
					off += typeWeights[f.typ[i]] * f.objW[i]
				}
			}
			offsets[ci] = off
		}
	}
	return groups, offsets
}

// checkTypeWeights validates one weight vector against the engine's sets.
func (e *Engine) checkTypeWeights(typeWeights []float64) error {
	if len(typeWeights) != len(e.in.Sets) {
		return fmt.Errorf("query: %d type weights for %d sets", len(typeWeights), len(e.in.Sets))
	}
	for ti, w := range typeWeights {
		if w <= 0 {
			return fmt.Errorf("%w (type %d)", ErrBadWeight, ti)
		}
	}
	return nil
}

// NewEngine prepares an engine for the given input evaluating with method
// (RRB or MBRB; SSC has no reusable state and is rejected). The TypeWeight
// values in the input's objects are placeholders — every Query overrides
// them — but object weights and ObjKinds are baked into the prepared MOVD.
func NewEngine(in Input, method Method) (*Engine, error) {
	if method != RRB && method != MBRB {
		return nil, fmt.Errorf("query: engine requires RRB or MBRB, got %v", method)
	}
	if err := in.validate(); err != nil {
		return nil, err
	}
	e := &Engine{in: in, method: method}
	e.mode = core.RRB
	if method == MBRB {
		e.mode = core.MBRB
	}
	start := time.Now()
	// Reuse the standard pipeline for modules 1-2 by running a solve with a
	// captured MOVD would recompute the optimizer; instead build directly.
	// Workers > 1 parallelises both modules exactly as Solve does.
	basics, fps, cacheStats, err := in.buildBasics(method, e.mode, nil)
	if err != nil {
		return nil, err
	}
	var stats core.OverlapStats
	acc, err := in.cachedOverlapChain(e.mode, nil, basics, fps, &stats, &cacheStats, nil)
	if err != nil {
		return nil, err
	}
	e.cacheStats = cacheStats
	e.movd = acc
	e.combos = acc.Groups()
	e.finishPrep()
	e.prepTime = time.Since(start)
	return e, nil
}

// PrepTime reports how long Prepare (VD generation + overlap) took.
func (e *Engine) PrepTime() time.Duration { return e.prepTime }

// CacheStats reports the diagram-cache hits and misses of the preparation's
// VD stage (Entries/Bytes snapshot the cache as of preparation time).
func (e *Engine) CacheStats() CacheStats { return e.cacheStats }

// OVRs returns the size of the prepared MOVD.
func (e *Engine) OVRs() int { return e.movd.Len() }

// Combinations returns the number of candidate object combinations the
// prepared MOVD admits.
func (e *Engine) Combinations() int { return len(e.combos) }

// Query answers the MOLQ with per-type weights w^t given in typeWeights
// (len must equal the number of object sets; all entries positive). Object
// weights and ς^o families are those baked in at preparation. Query is safe
// for concurrent use: the prepared state is read-only and each call
// assembles its problems into its own freshly allocated slab.
func (e *Engine) Query(typeWeights []float64) (Result, error) {
	if err := e.checkTypeWeights(typeWeights); err != nil {
		return Result{}, err
	}
	res := Result{Method: e.method}
	var root *obs.Span
	if e.in.Trace {
		root = obs.StartSpan("engine-query/" + e.method.String())
		res.Stats.Trace = root
	}
	start := time.Now()
	groups, offsets := e.problemFor(typeWeights)
	var batch fermat.BatchResult
	var err error
	if e.in.Workers > 1 {
		batch, err = fermat.CostBoundBatchParallel(groups, offsets, e.in.options(), e.in.Workers)
	} else {
		batch, err = fermat.CostBoundBatchOffsets(groups, offsets, e.in.options())
	}
	if err != nil {
		return res, err
	}
	res.Loc = batch.Loc
	res.Cost = batch.Cost
	res.Stats.Groups = len(groups)
	res.Stats.OVRs = e.movd.Len()
	res.Stats.PointsManaged = e.movd.PointsManaged()
	res.Stats.Fermat = batch.Stats
	res.Stats.OptimizeTime = time.Since(start)
	res.Stats.TotalTime = res.Stats.OptimizeTime
	if root != nil {
		optSpan := root.Child("optimize")
		optSpan.SetAttr("groups", res.Stats.Groups)
		optSpan.SetAttr("weiszfeld_iters", batch.Stats.TotalIters)
		optSpan.EndWith(res.Stats.OptimizeTime)
		root.EndWith(res.Stats.TotalTime)
	}
	return res, nil
}

// QueryBatch answers the MOLQ for many weight vectors over the one prepared
// MOVD, returning one Result per vector in order. The per-vector group and
// offset setup is assembled from the engine's precomputed flat combo arrays,
// and all vectors' candidate × weight-vector Fermat-Weber problems fan out
// through a single shared worker pool (Workers goroutines; ≤ 1 runs
// sequentially), each vector under its own Algorithm-5 cost bound. Compared
// with len(vecs) sequential Query calls this amortizes both the setup and
// the pool spin-up, which is the paper's own serving scenario: repeated
// evaluation under different user weight settings (Sec 1, Sec 6).
//
// Every vector is validated before any work runs; one bad vector fails the
// whole batch. Per-Result phase durations report the shared batch's wall
// clock — concurrent vectors aren't individually attributable.
func (e *Engine) QueryBatch(vecs [][]float64) ([]Result, error) {
	if len(vecs) == 0 {
		return nil, nil
	}
	for vi, tw := range vecs {
		if err := e.checkTypeWeights(tw); err != nil {
			return nil, fmt.Errorf("vector %d: %w", vi, err)
		}
	}
	var root *obs.Span
	if e.in.Trace {
		root = obs.StartSpan(fmt.Sprintf("engine-query-batch/%s/%d", e.method.String(), len(vecs)))
	}
	start := time.Now()
	problems := make([]fermat.BatchProblem, len(vecs))
	for vi, tw := range vecs {
		groups, offsets := e.problemFor(tw)
		problems[vi] = fermat.BatchProblem{Groups: groups, Offsets: offsets, PairDist: e.flat.pairDist}
	}
	batches, err := fermat.CostBoundMultiBatch(problems, e.in.options(), e.in.Workers)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	out := make([]Result, len(vecs))
	for vi, b := range batches {
		out[vi] = Result{Method: e.method, Loc: b.Loc, Cost: b.Cost}
		st := &out[vi].Stats
		st.Groups = len(problems[vi].Groups)
		st.OVRs = e.movd.Len()
		st.PointsManaged = e.movd.PointsManaged()
		st.Fermat = b.Stats
		st.OptimizeTime = elapsed
		st.TotalTime = elapsed
	}
	if root != nil {
		root.SetAttr("vectors", len(vecs))
		root.SetAttr("groups_per_vector", len(e.combos))
		root.EndWith(elapsed)
		out[0].Stats.Trace = root
	}
	return out, nil
}

// MWGDAt scores an arbitrary candidate location under the given type
// weights (linear scan of the stored sets).
func (e *Engine) MWGDAt(q geom.Point, typeWeights []float64) float64 {
	total := 0.0
	for ti, set := range e.in.Sets {
		additive := e.in.kind(ti) == AdditiveObjWeights
		wt := 1.0
		if ti < len(typeWeights) {
			wt = typeWeights[ti]
		}
		best := -1.0
		for _, o := range set {
			var v float64
			if additive {
				v = wt * (q.Dist(o.Loc) + o.ObjWeight)
			} else {
				v = wt * o.ObjWeight * q.Dist(o.Loc)
			}
			if best < 0 || v < best {
				best = v
			}
		}
		if best >= 0 {
			total += best
		}
	}
	return total
}
