package query

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"molq/internal/core"
	"molq/internal/fermat"
	"molq/internal/geom"
	"molq/internal/obs"
	"molq/internal/voronoi"
)

// Engine answers repeated MOLQs over a mutable set of POI data. The key
// observation (from the model itself) is that the MOVD depends only on
// object locations, object weights and the ς^o family — never on the type
// weights w^t, which enter the objective only through the optimizer's
// Fermat-Weber folding. Preparing an Engine therefore runs the VD Generator
// and MOVD Overlapper once; each Query call re-runs just the optimizer with
// fresh type weights, typically orders of magnitude cheaper.
//
// Prepared state lives in immutable versioned snapshots (engineState) behind
// an atomic pointer: queries load one snapshot and never observe a mutation
// mid-flight, while InsertObject/DeleteObject (mutate.go) build the next
// version copy-on-write and publish it with a single store. Mutations are
// serialised by updMu; queries are lock-free.
type Engine struct {
	in     Input // base configuration; the CURRENT object sets live in the state snapshot
	mode   core.Mode
	method Method
	state  atomic.Pointer[engineState]

	// replicas are the per-core read replicas of the flat query state (nil
	// when Input.Replicas ≤ 0). Slots are claimed with TryLock and refreshed
	// lazily against the current snapshot version.
	replicas []*engReplica

	// updMu serialises mutations. The incremental substrate below it (one
	// maintained Delaunay triangulation per type, plus the object↔slot maps)
	// is only touched under updMu; nil entries mean the type repairs by full
	// rebuild (weighted diagrams, snapshot-loaded engines, degenerate
	// geometry).
	updMu sync.Mutex
	dyn   []*typeDynamic

	// comboRef/comboPos maintain the combination multiset of the CURRENT
	// snapshot's MOVD so the incremental repair can update the combos list in
	// O(dirty) instead of re-extracting it from every OVR: comboRef counts
	// OVRs per combination dedup key, comboPos locates each combination in
	// state.combos. Guarded by updMu, built lazily on the first incremental
	// mutation, and discarded (nil) by rebuilds, which re-extract from
	// scratch.
	comboRef map[string]int
	comboPos map[string]int

	// prep captures how long Prepare took, for reporting.
	prepTime time.Duration
	// cacheStats records the diagram-cache lookups of the preparation.
	cacheStats CacheStats
}

// engineState is one immutable prepared snapshot: everything a query reads.
// A snapshot is never modified after publication; mutations assemble a fresh
// one sharing every unchanged OVR, basic diagram and combo slice with its
// predecessor (copy-on-write).
type engineState struct {
	version int64
	sets    [][]core.Object
	// basics holds the per-type basic MOVDs the overlapped diagram was built
	// from — the operands incremental splicing re-sweeps. nil for engines
	// restored from snapshots (their first mutation falls back to a full
	// rebuild, which repopulates it).
	basics []*core.MOVD
	// fps are the per-type basic fingerprints when a diagram cache is
	// configured; mutations advance them and retire the stale entries.
	fps    []fingerprint
	movd   *core.MOVD
	combos [][]core.Object
	flat   engineFlat
}

// typeDynamic is the mutable Voronoi substrate of one type: the maintained
// triangulation plus the slot bookkeeping tying diagram sites to object IDs.
type typeDynamic struct {
	vd     *voronoi.Dynamic
	slotOf map[int]int   // object ID → slot
	objAt  []core.Object // slot → object (stale entries for dead slots)
}

// engineFlat is the combo-major flattening of combos, precomputed once per
// version so every Query/QueryBatch call assembles its Fermat-Weber problems
// from contiguous arrays (folded weights carved out of a per-query arena)
// instead of walking the nested combo slices. groups is the fermat-facing
// structure-of-arrays geometry (coordinates, group boundaries, cached pair
// distances for the two-point prefilter); objW and typ drive the per-vector
// weight folding. additive marks the ς^o family per type; anyAdditive
// short-circuits the offset scan for the common all-multiplicative case.
type engineFlat struct {
	groups      fermat.FlatGroups
	objW        []float64
	typ         []int32
	additive    []bool
	anyAdditive bool
}

// buildFlat derives the flat combo representation for one state snapshot.
func (in *Input) buildFlat(combos [][]core.Object) engineFlat {
	n := 0
	for _, c := range combos {
		n += len(c)
	}
	var f engineFlat
	f.groups.X = make([]float64, 0, n)
	f.groups.Y = make([]float64, 0, n)
	f.objW = make([]float64, 0, n)
	f.typ = make([]int32, 0, n)
	f.groups.Starts = make([]int32, len(combos)+1)
	f.additive = make([]bool, len(in.Sets))
	for ti := range in.Sets {
		if in.kind(ti) == AdditiveObjWeights {
			f.additive[ti] = true
			f.anyAdditive = true
		}
	}
	// pairDist[i] is the distance between the first two points of combo i
	// (0 for shorter combos). The prefilter's geometry is weight-independent:
	// one sqrt per combo at preparation instead of one per combo per vector.
	f.groups.PairDist = make([]float64, len(combos))
	for i, c := range combos {
		f.groups.Starts[i] = int32(len(f.groups.X))
		for _, o := range c {
			f.groups.X = append(f.groups.X, o.Loc.X)
			f.groups.Y = append(f.groups.Y, o.Loc.Y)
			f.objW = append(f.objW, o.ObjWeight)
			f.typ = append(f.typ, int32(o.Type))
		}
		if len(c) >= 2 {
			f.groups.PairDist[i] = c[0].Loc.Dist(c[1].Loc)
		}
	}
	f.groups.Starts[len(combos)] = int32(len(f.groups.X))
	return f
}

// copyFrom deep-copies src into f, reusing capacity — the replica refresh
// path. After it returns, f shares no backing array with src.
func (f *engineFlat) copyFrom(src *engineFlat) {
	f.groups.X = append(f.groups.X[:0], src.groups.X...)
	f.groups.Y = append(f.groups.Y[:0], src.groups.Y...)
	f.groups.Starts = append(f.groups.Starts[:0], src.groups.Starts...)
	f.groups.PairDist = append(f.groups.PairDist[:0], src.groups.PairDist...)
	f.objW = append(f.objW[:0], src.objW...)
	f.typ = append(f.typ[:0], src.typ...)
	f.additive = append(f.additive[:0], src.additive...)
	f.anyAdditive = src.anyAdditive
}

// arenaDemand returns how many arena floats one weight vector's problem setup
// carves.
func (f *engineFlat) arenaDemand() int {
	n := len(f.groups.X)
	if f.anyAdditive {
		n += f.groups.Len()
	}
	return n
}

// problemFor folds one weight vector into a flat Fermat-Weber problem: the
// per-point weights (and, for additive types, per-combo constant offsets) are
// carved out of the caller's arena; the geometry is shared by reference. The
// returned problem is valid until the arena's next begin.
func (f *engineFlat) problemFor(typeWeights []float64, a *queryArena) fermat.FlatProblem {
	w := a.floats(len(f.groups.X))
	for i := range w {
		ti := f.typ[i]
		if f.additive[ti] {
			w[i] = typeWeights[ti]
		} else {
			w[i] = typeWeights[ti] * f.objW[i]
		}
	}
	p := fermat.FlatProblem{Geom: &f.groups, W: w}
	if f.anyAdditive {
		nc := f.groups.Len()
		p.Offsets = a.floats(nc)
		for ci := 0; ci < nc; ci++ {
			off := 0.0
			for i := f.groups.Starts[ci]; i < f.groups.Starts[ci+1]; i++ {
				if f.additive[f.typ[i]] {
					off += typeWeights[f.typ[i]] * f.objW[i]
				}
			}
			p.Offsets[ci] = off
		}
	}
	return p
}

// engReplica is one per-core read replica of the engine's hot query state: a
// private deep copy of the flat combo arrays plus a private arena. Concurrent
// QueryBatch readers each claim one slot, so two cores never stream the same
// cache-hot arrays (no shared-line traffic on the hottest read path), and the
// arena needs no synchronisation at all. A replica refreshes lazily: claiming
// it under a newer engine version re-copies the flat arrays before use.
type engReplica struct {
	mu      sync.Mutex // claimed with TryLock; never contended-on
	version int64
	flat    engineFlat
	arena   queryArena
}

// initReplicas sizes the replica set from Input.Replicas (0 disables).
func (e *Engine) initReplicas() {
	if e.in.Replicas <= 0 {
		return
	}
	e.replicas = make([]*engReplica, e.in.Replicas)
	for i := range e.replicas {
		e.replicas[i] = &engReplica{}
	}
}

// acquireReplica claims a free replica slot and brings it up to date with the
// given snapshot. nil means no slot was free (or replicas are disabled); the
// caller then reads the shared snapshot directly — always correct, just not
// core-private. The caller must Unlock the returned replica.
func (e *Engine) acquireReplica(st *engineState) *engReplica {
	for _, rep := range e.replicas {
		if rep.mu.TryLock() {
			if rep.version != st.version {
				rep.flat.copyFrom(&st.flat)
				rep.version = st.version
			}
			return rep
		}
	}
	return nil
}

// claimQueryState picks the flat arrays and arena for one query: a replica's
// when a slot is free, the shared snapshot's plus a pooled arena otherwise.
// claimed reports which path was taken (exported on Stats.ReplicaClaimed for
// the slow-query log — a query that missed every replica slot streams shared
// arrays across cores, a plausible tail-latency cause worth recording).
// release must be called when the query is done.
func (e *Engine) claimQueryState(st *engineState) (flat *engineFlat, arena *queryArena, release func(), claimed bool) {
	if rep := e.acquireReplica(st); rep != nil {
		return &rep.flat, &rep.arena, rep.mu.Unlock, true
	}
	a := arenaPool.Get().(*queryArena)
	return &st.flat, a, func() { arenaPool.Put(a) }, false
}

// checkTypeWeights validates one weight vector against the engine's sets.
// The number of types is immutable — mutations add and remove objects, never
// whole sets — so this needs no snapshot.
func (e *Engine) checkTypeWeights(typeWeights []float64) error {
	if len(typeWeights) != len(e.in.Sets) {
		return fmt.Errorf("query: %d type weights for %d sets", len(typeWeights), len(e.in.Sets))
	}
	for ti, w := range typeWeights {
		if w <= 0 {
			return fmt.Errorf("%w (type %d)", ErrBadWeight, ti)
		}
	}
	return nil
}

// NewEngine prepares an engine for the given input evaluating with method
// (RRB or MBRB; SSC has no reusable state and is rejected). The TypeWeight
// values in the input's objects are placeholders — every Query overrides
// them — but object weights and ObjKinds are baked into the prepared MOVD.
func NewEngine(in Input, method Method) (*Engine, error) {
	if method != RRB && method != MBRB {
		return nil, fmt.Errorf("query: engine requires RRB or MBRB, got %v", method)
	}
	if err := in.validate(); err != nil {
		return nil, err
	}
	e := &Engine{in: in, method: method}
	e.mode = core.RRB
	if method == MBRB {
		e.mode = core.MBRB
	}
	start := time.Now()
	// Reuse the standard pipeline for modules 1-2 by running a solve with a
	// captured MOVD would recompute the optimizer; instead build directly.
	// Workers > 1 parallelises both modules exactly as Solve does.
	basics, fps, cacheStats, err := in.buildBasics(method, e.mode, nil)
	if err != nil {
		return nil, err
	}
	var stats core.OverlapStats
	acc, err := in.cachedOverlapChain(e.mode, nil, basics, fps, &stats, &cacheStats, nil)
	if err != nil {
		return nil, err
	}
	e.cacheStats = cacheStats
	combos := acc.Groups()
	e.state.Store(&engineState{
		version: 1,
		sets:    in.Sets,
		basics:  basics,
		fps:     fps,
		movd:    acc,
		combos:  combos,
		flat:    in.buildFlat(combos),
	})
	e.dyn = make([]*typeDynamic, len(in.Sets))
	e.initReplicas()
	e.prepTime = time.Since(start)
	return e, nil
}

// PrepTime reports how long Prepare (VD generation + overlap) took.
func (e *Engine) PrepTime() time.Duration { return e.prepTime }

// CacheStats reports the diagram-cache hits and misses of the preparation's
// VD stage (Entries/Bytes snapshot the cache as of preparation time).
func (e *Engine) CacheStats() CacheStats { return e.cacheStats }

// Version reports the current snapshot version: 1 after preparation,
// incremented by every successful InsertObject/DeleteObject.
func (e *Engine) Version() int64 { return e.state.Load().version }

// OVRs returns the size of the current prepared MOVD.
func (e *Engine) OVRs() int { return e.state.Load().movd.Len() }

// Combinations returns the number of candidate object combinations the
// current prepared MOVD admits.
func (e *Engine) Combinations() int { return len(e.state.Load().combos) }

// ObjectCounts returns the current number of objects per type.
func (e *Engine) ObjectCounts() []int {
	st := e.state.Load()
	out := make([]int, len(st.sets))
	for ti, set := range st.sets {
		out[ti] = len(set)
	}
	return out
}

// Query answers the MOLQ with per-type weights w^t given in typeWeights
// (len must equal the number of object sets; all entries positive). Object
// weights and ς^o families are those baked in at preparation. Query is safe
// for concurrent use, including concurrently with mutations: it reads one
// immutable snapshot end to end and each call assembles its problems into
// its own freshly allocated slab.
func (e *Engine) Query(typeWeights []float64) (Result, error) {
	return e.QueryContext(context.Background(), typeWeights)
}

// QueryContext is Query honouring a context: cancellation stops the
// optimizer's workers within one group's solve time and returns the
// context's error.
func (e *Engine) QueryContext(ctx context.Context, typeWeights []float64) (Result, error) {
	if err := e.checkTypeWeights(typeWeights); err != nil {
		return Result{}, err
	}
	st := e.state.Load()
	res := Result{Method: e.method}
	var root *obs.Span
	if e.in.Trace {
		root = obs.StartSpanCtx(ctx, "engine-query/"+e.method.String())
		res.Stats.Trace = root
	}
	start := time.Now()
	flat, arena, release, claimed := e.claimQueryState(st)
	defer release()
	res.Stats.ReplicaClaimed = claimed
	arena.begin(flat.arenaDemand())
	p := flat.problemFor(typeWeights, arena)
	workers := e.in.Workers
	if workers < 1 {
		workers = 1
	}
	batch, err := fermat.CostBoundBatchFlatCtx(ctx, p, e.in.options(), workers)
	if err != nil {
		return res, err
	}
	res.Loc = batch.Loc
	res.Cost = batch.Cost
	res.Stats.Groups = flat.groups.Len()
	res.Stats.OVRs = st.movd.Len()
	res.Stats.PointsManaged = st.movd.PointsManaged()
	res.Stats.Fermat = batch.Stats
	res.Stats.OptimizeTime = time.Since(start)
	res.Stats.TotalTime = res.Stats.OptimizeTime
	if root != nil {
		optSpan := root.Child("optimize")
		optSpan.SetAttr("groups", res.Stats.Groups)
		optSpan.SetAttr("weiszfeld_iters", batch.Stats.TotalIters)
		optSpan.EndWith(res.Stats.OptimizeTime)
		root.EndWith(res.Stats.TotalTime)
	}
	return res, nil
}

// QueryBatch answers the MOLQ for many weight vectors over one prepared
// snapshot, returning one Result per vector in order. The per-vector group
// and offset setup is assembled from the snapshot's precomputed flat combo
// arrays, and all vectors' candidate × weight-vector Fermat-Weber problems
// fan out through a single shared worker pool (Workers goroutines; ≤ 1 runs
// sequentially), each vector under its own Algorithm-5 cost bound. Compared
// with len(vecs) sequential Query calls this amortizes both the setup and
// the pool spin-up, which is the paper's own serving scenario: repeated
// evaluation under different user weight settings (Sec 1, Sec 6).
//
// Every vector is validated before any work runs; one bad vector fails the
// whole batch. Per-Result phase durations report the shared batch's wall
// clock — concurrent vectors aren't individually attributable.
func (e *Engine) QueryBatch(vecs [][]float64) ([]Result, error) {
	return e.QueryBatchContext(context.Background(), vecs)
}

// QueryBatchContext is QueryBatch honouring a context (see QueryContext).
// An empty batch is answered with an empty, non-nil result slice — callers
// (and JSON encoders downstream) can rely on len(vecs) results always.
func (e *Engine) QueryBatchContext(ctx context.Context, vecs [][]float64) ([]Result, error) {
	if len(vecs) == 0 {
		return []Result{}, nil
	}
	for vi, tw := range vecs {
		if err := e.checkTypeWeights(tw); err != nil {
			return nil, fmt.Errorf("vector %d: %w", vi, err)
		}
	}
	st := e.state.Load()
	var root *obs.Span
	if e.in.Trace {
		root = obs.StartSpanCtx(ctx, fmt.Sprintf("engine-query-batch/%s/%d", e.method.String(), len(vecs)))
	}
	start := time.Now()
	flat, arena, release, claimed := e.claimQueryState(st)
	defer release()
	arena.begin(len(vecs) * flat.arenaDemand())
	problems := make([]fermat.FlatProblem, len(vecs))
	for vi, tw := range vecs {
		problems[vi] = flat.problemFor(tw, arena)
	}
	batches, err := fermat.CostBoundMultiBatchFlatCtx(ctx, problems, e.in.options(), e.in.Workers)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	// The vectors were solved together over one pool, so wall-clock time is
	// only attributable to the batch: report it in BatchElapsed on every
	// item, and give each item its amortized share as the per-item phase
	// time, so summing per-item times over the batch yields the batch cost —
	// not len(vecs) times it.
	share := elapsed / time.Duration(len(vecs))
	out := make([]Result, len(vecs))
	for vi, b := range batches {
		out[vi] = Result{Method: e.method, Loc: b.Loc, Cost: b.Cost}
		st2 := &out[vi].Stats
		st2.Groups = flat.groups.Len()
		st2.OVRs = st.movd.Len()
		st2.PointsManaged = st.movd.PointsManaged()
		st2.Fermat = b.Stats
		st2.OptimizeTime = share
		st2.TotalTime = share
		st2.BatchElapsed = elapsed
		st2.ReplicaClaimed = claimed
	}
	if root != nil {
		root.SetAttr("vectors", len(vecs))
		root.SetAttr("groups_per_vector", len(st.combos))
		root.EndWith(elapsed)
		out[0].Stats.Trace = root
	}
	return out, nil
}

// MWGDAt scores an arbitrary candidate location under the given type
// weights (linear scan of the current sets).
func (e *Engine) MWGDAt(q geom.Point, typeWeights []float64) float64 {
	st := e.state.Load()
	total := 0.0
	for ti, set := range st.sets {
		additive := e.in.kind(ti) == AdditiveObjWeights
		wt := 1.0
		if ti < len(typeWeights) {
			wt = typeWeights[ti]
		}
		best := -1.0
		for _, o := range set {
			var v float64
			if additive {
				v = wt * (q.Dist(o.Loc) + o.ObjWeight)
			} else {
				v = wt * o.ObjWeight * q.Dist(o.Loc)
			}
			if best < 0 || v < best {
				best = v
			}
		}
		if best >= 0 {
			total += best
		}
	}
	return total
}
