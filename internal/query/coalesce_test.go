package query

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"molq/internal/core"
)

// TestGetOrBuildCoalesces drives DiagramCache.getOrBuild directly: K
// concurrent misses on one fingerprint must run exactly one build, with the
// K-1 others blocking on the in-flight flight and sharing its result.
func TestGetOrBuildCoalesces(t *testing.T) {
	const K = 8
	cache := NewDiagramCache(0)
	key := fingerprint{1, 2, 3}
	built := &core.MOVD{}
	var builds atomic.Int64
	release := make(chan struct{})
	build := func() (*core.MOVD, error) {
		builds.Add(1)
		<-release
		return built, nil
	}

	results := make([]*core.MOVD, K)
	outcomes := make([]lookupOutcome, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, o, err := cache.getOrBuild(key, build)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
			}
			results[i], outcomes[i] = m, o
		}(i)
	}
	// Wait until the K-1 non-builders are parked on the flight, then let the
	// one build finish.
	deadline := time.Now().Add(5 * time.Second)
	for cache.Stats().Coalesced < K-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters coalesced", cache.Stats().Coalesced, K-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("%d builds for %d concurrent misses, want exactly 1", n, K)
	}
	var hits, builtN, coalesced int
	for i := range results {
		if results[i] != built {
			t.Fatalf("goroutine %d got a different diagram", i)
		}
		switch outcomes[i] {
		case lookupHit:
			hits++
		case lookupBuilt:
			builtN++
		case lookupCoalesced:
			coalesced++
		}
	}
	if builtN != 1 || coalesced != K-1 || hits != 0 {
		t.Fatalf("outcomes built=%d coalesced=%d hit=%d, want 1/%d/0", builtN, coalesced, hits, K-1)
	}
	st := cache.Stats()
	if st.Misses != 1 || st.Coalesced != K-1 || st.Entries != 1 {
		t.Fatalf("stats %+v, want misses=1 coalesced=%d entries=1", st, K-1)
	}
	// The diagram is now cached: a later lookup is a plain hit.
	if _, o, err := cache.getOrBuild(key, build); err != nil || o != lookupHit {
		t.Fatalf("post-build lookup: outcome=%v err=%v, want hit", o, err)
	}
}

// TestGetOrBuildErrorNotCached checks a failed build unblocks every waiter
// with the error, caches nothing, and lets the next lookup retry the build.
func TestGetOrBuildErrorNotCached(t *testing.T) {
	const K = 6
	cache := NewDiagramCache(0)
	key := fingerprint{9}
	wantErr := errors.New("construction failed")
	var builds atomic.Int64
	release := make(chan struct{})
	failing := func() (*core.MOVD, error) {
		builds.Add(1)
		<-release
		return nil, wantErr
	}

	errs := make([]error, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = cache.getOrBuild(key, failing)
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for cache.Stats().Coalesced < K-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d waiters coalesced", cache.Stats().Coalesced, K-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("%d builds, want 1", n)
	}
	for i, err := range errs {
		if !errors.Is(err, wantErr) {
			t.Fatalf("goroutine %d: err=%v, want %v", i, err, wantErr)
		}
	}
	if st := cache.Stats(); st.Entries != 0 {
		t.Fatalf("error build was cached: %+v", st)
	}
	// The error is not sticky: the next lookup builds again and can succeed.
	ok := &core.MOVD{}
	m, o, err := cache.getOrBuild(key, func() (*core.MOVD, error) { return ok, nil })
	if err != nil || m != ok || o != lookupBuilt {
		t.Fatalf("retry after error: m=%p outcome=%v err=%v", m, o, err)
	}
	if n := builds.Load(); n != 1 { // failing build ran once; retry used its own func
		t.Fatalf("failing build ran %d times, want 1", n)
	}
}

// TestConcurrentColdSolvesCoalesce is the end-to-end guarantee: K identical
// cold solves racing on an empty cache perform exactly one VD build per
// object set (counted via the construction hook) and one ⊕ chain, not K.
func TestConcurrentColdSolvesCoalesce(t *testing.T) {
	const K = 8
	var builds atomic.Int64
	vdBuildHook = func() { builds.Add(1) }
	defer func() { vdBuildHook = nil }()

	cache := NewDiagramCache(0)
	in := cacheInput(29, cache)
	ref, err := Solve(cacheInput(29, NewDiagramCache(0)), RRB)
	if err != nil {
		t.Fatal(err)
	}
	builds.Store(0)

	start := make(chan struct{})
	results := make([]Result, K)
	var wg sync.WaitGroup
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			solveIn := in
			res, err := Solve(solveIn, RRB)
			if err != nil {
				t.Errorf("solve %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	close(start)
	wg.Wait()

	// Two object sets → exactly two basic constructions across all K solves.
	if n := builds.Load(); n != 2 {
		t.Fatalf("%d VD builds across %d concurrent cold solves, want exactly 2", n, K)
	}
	st := cache.Stats()
	// 3 distinct fingerprints (2 basics + 1 overlap) → 3 misses total; every
	// other lookup either coalesced onto an in-flight build or hit the cache.
	if st.Misses != 3 {
		t.Fatalf("cache misses=%d across %d cold solves, want 3", st.Misses, K)
	}
	if st.Hits+st.Coalesced != 3*K-3 {
		t.Fatalf("hits=%d coalesced=%d, want their sum = %d", st.Hits, st.Coalesced, 3*K-3)
	}
	for i, res := range results {
		if math.Abs(res.Cost-ref.Cost) > 1e-9*(1+ref.Cost) {
			t.Fatalf("solve %d cost %v != reference %v", i, res.Cost, ref.Cost)
		}
	}
}

// TestSolveReportsCoalescedStats checks a solve that waited on another's
// build reports the wait in its own Result.Stats.Cache.
func TestSolveReportsCoalescedStats(t *testing.T) {
	const K = 6
	cache := NewDiagramCache(0)
	var coalesced atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			in := cacheInput(31, cache)
			res, err := Solve(in, MBRB)
			if err != nil {
				t.Error(err)
				return
			}
			coalesced.Add(int64(res.Stats.Cache.Coalesced))
		}()
	}
	close(start)
	wg.Wait()
	// Per-solve attributions must add up to the cache's own total.
	if got, want := coalesced.Load(), int64(cache.Stats().Coalesced); got != want {
		t.Fatalf("solves attributed %d coalesced waits, cache counted %d", got, want)
	}
}

// BenchmarkConcurrentColdSolve measures K goroutines racing identical cold
// solves — the fill path coalescing makes N-simultaneous-misses cost one
// build instead of N.
func BenchmarkConcurrentColdSolve(b *testing.B) {
	in := randomInput(rand.New(rand.NewSource(3)), []int{200, 200}, true)
	const K = 4
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cache := NewDiagramCache(0)
		b.StartTimer()
		var wg sync.WaitGroup
		for g := 0; g < K; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				solveIn := in
				solveIn.Cache = cache
				if _, err := Solve(solveIn, RRB); err != nil {
					b.Error(err)
				}
			}()
		}
		wg.Wait()
	}
}
