package query

import (
	"context"
	"os"
	"time"

	"molq/internal/core"
	"molq/internal/fermat"
	"molq/internal/obs"
	"molq/internal/store"
)

// finishSpilled completes a solve whose final overlap goes through disk
// (Input.SpillDir): the last ⊕ streams its OVRs to a temporary snapshot and
// the optimizer streams them back, deduplicating combinations on the fly.
// With Workers > 1 the spilling sweep itself runs sharded; the writer stays
// safe because the parallel engine serialises emissions. The temporary file
// is removed before returning.
func (in *Input) finishSpilled(
	ctx context.Context,
	res Result,
	acc, last *core.MOVD,
	prune core.PruneFunc,
	ovStart, totalStart time.Time,
	root, ovSpan *obs.Span,
) (Result, error) {
	tmp, err := os.CreateTemp(in.SpillDir, "molq-spill-*.movd")
	if err != nil {
		return res, err
	}
	path := tmp.Name()
	tmp.Close()
	defer os.Remove(path)

	spillSpan := ovSpan.Child("⊕ spill")
	st, err := store.OverlapToFileWorkers(acc, last, prune, path, in.Workers)
	if err != nil {
		return res, err
	}
	spillSpan.SetAttr("events", st.Events)
	spillSpan.SetAttr("ovrs", st.OutputOVRs)
	spillSpan.End()
	res.Stats.Overlap.Add(st)
	res.Stats.OverlapTime = time.Since(ovStart)
	res.Stats.OVRs = st.OutputOVRs
	res.Stats.PointsManaged = st.OutputPoints
	ovSpan.SetAttr("ovrs", res.Stats.OVRs)
	ovSpan.EndWith(res.Stats.OverlapTime)

	// Streaming optimizer (Alg 5 over the spill file).
	optSpan := root.Child("optimize")
	optStart := time.Now()
	additive := map[int]bool{}
	for ti := range in.Sets {
		if in.kind(ti) == AdditiveObjWeights {
			additive[ti] = true
		}
	}
	streamer := fermat.NewStreamer(in.options(), !in.DisableCostBound)
	seen := make(map[string]struct{})
	done := ctx.Done()
	offered := 0
	err = store.IterateOVRs(path, func(o *core.OVR) error {
		if done != nil && offered%64 == 0 {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
		offered++
		k := o.DedupKey()
		if _, dup := seen[k]; dup {
			return nil
		}
		seen[k] = struct{}{}
		g, off := store.Problem(o.POIs, additive)
		return streamer.Offer(g, off)
	})
	if err != nil {
		return res, err
	}
	batch, err := streamer.Result()
	if err != nil {
		return res, err
	}
	res.Stats.OptimizeTime = time.Since(optStart)
	res.Stats.Groups = len(seen)
	res.Stats.Fermat = batch.Stats
	res.Loc = batch.Loc
	res.Cost = batch.Cost
	res.Stats.TotalTime = time.Since(totalStart)
	optSpan.SetAttr("groups", res.Stats.Groups)
	optSpan.EndWith(res.Stats.OptimizeTime)
	root.EndWith(res.Stats.TotalTime)
	return res, nil
}
