package query

import (
	"math"
	"math/rand"
	"testing"

	"molq/internal/raster"
)

// TestOptimumMatchesRasterGroundTruth cross-checks the full pipeline against
// an algorithm-independent coarse-to-fine grid minimiser of the MWGD field.
// This catches systemic errors (wrong Voronoi cells, dropped combinations,
// mis-folded weights) that the mutual SSC/RRB/MBRB agreement tests would
// miss if all three shared a bug.
func TestOptimumMatchesRasterGroundTruth(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 5; trial++ {
		in := randomInput(r, []int{3 + r.Intn(6), 3 + r.Intn(6), 3 + r.Intn(6)}, true)
		in.Epsilon = 1e-9
		res, err := Solve(in, RRB)
		if err != nil {
			t.Fatal(err)
		}
		_, gridCost := raster.Minimize(in.mwgdAt, in.Bounds, 48, 7)
		// The grid value is an upper bound of the true optimum sampled at a
		// cell center; the solver must be at least as good (within grid
		// resolution) and never meaningfully worse.
		if res.Cost > gridCost*(1+1e-3)+1e-9 {
			t.Fatalf("trial %d: solver cost %v worse than grid scan %v", trial, res.Cost, gridCost)
		}
		if gridCost < res.Cost*(1-5e-2) {
			t.Fatalf("trial %d: grid scan found %v, far below solver %v — solver missed the optimum",
				trial, gridCost, res.Cost)
		}
	}
}

// TestAdditiveOptimumMatchesRaster does the same for the additive ς^o.
func TestAdditiveOptimumMatchesRaster(t *testing.T) {
	r := rand.New(rand.NewSource(4343))
	in := additiveInput(r, []int{4, 5, 3})
	in.Epsilon = 1e-9
	res, err := Solve(in, MBRB)
	if err != nil {
		t.Fatal(err)
	}
	_, gridCost := raster.Minimize(in.mwgdAt, in.Bounds, 48, 7)
	if res.Cost > gridCost*(1+1e-3) {
		t.Fatalf("solver cost %v worse than grid %v", res.Cost, gridCost)
	}
	if math.Abs(gridCost-res.Cost) > 5e-2*res.Cost {
		t.Fatalf("grid %v and solver %v diverge", gridCost, res.Cost)
	}
}
