package query

import "sync"

// queryArena is the per-query scratch allocator for the optimizer's flat
// problem setup: folded weights and offsets for every vector of a query are
// carved out of one grow-only float64 slab instead of per-vector heap slabs.
// A query declares its total demand up front (begin), so the slab is a single
// allocation that reaches a steady state after the first query at the
// high-water size; reset between queries is a truncation. Carved slices are
// full-capacity subslices of the slab and stay valid until the next begin —
// exactly one query's lifetime, which is also how long fermat.FlatProblem
// needs them.
//
// An arena is single-goroutine state. Engines give each read replica its own
// arena; queries that run without a replica borrow one from arenaPool.
type queryArena struct {
	buf  []float64
	used int
}

// begin resets the arena and guarantees capacity for n floats.
func (a *queryArena) begin(n int) {
	if cap(a.buf) < n {
		a.buf = make([]float64, n)
	}
	a.buf = a.buf[:cap(a.buf)]
	a.used = 0
}

// floats carves n floats out of the slab. The caller must stay within the
// demand declared to begin.
func (a *queryArena) floats(n int) []float64 {
	s := a.buf[a.used : a.used+n : a.used+n]
	a.used += n
	return s
}

// arenaPool serves queries that could not claim a replica slot (replicas
// disabled, or all slots busy): the arena is still a single grow-only slab
// per query, just shared across goroutines over time instead of pinned to a
// replica.
var arenaPool = sync.Pool{New: func() any { return new(queryArena) }}
