package query

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"molq/internal/core"
	"molq/internal/geom"
)

// TestQueryBatchPerItemTiming pins the batch timing contract: every item
// carries the batch wall clock in BatchElapsed, and the per-item phase times
// are amortized shares — summing them over the batch must not exceed the
// batch's wall clock. (The pre-fix code stamped the whole-batch elapsed into
// every item's TotalTime, so a 16-vector batch "cost" 16× its wall clock to
// anything aggregating per-item times.)
func TestQueryBatchPerItemTiming(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	eng, err := NewEngine(randomInput(r, []int{12, 10}, false), RRB)
	if err != nil {
		t.Fatal(err)
	}
	vecs := batchVecs(r, 16, 2)
	out, err := eng.QueryBatch(vecs)
	if err != nil {
		t.Fatal(err)
	}
	batch := out[0].Stats.BatchElapsed
	if batch <= 0 {
		t.Fatalf("BatchElapsed = %v, want > 0", batch)
	}
	var sum time.Duration
	for vi := range out {
		st := &out[vi].Stats
		if st.BatchElapsed != batch {
			t.Fatalf("vector %d: BatchElapsed %v != %v", vi, st.BatchElapsed, batch)
		}
		if st.TotalTime != st.OptimizeTime {
			t.Fatalf("vector %d: TotalTime %v != OptimizeTime %v", vi, st.TotalTime, st.OptimizeTime)
		}
		sum += st.TotalTime
	}
	if sum > batch {
		t.Fatalf("per-item times sum to %v, exceeding the batch wall clock %v", sum, batch)
	}
	// The share must be a real attribution, not zeroed-out.
	if sum < batch/2 {
		t.Fatalf("per-item times sum to %v, far below the batch wall clock %v", sum, batch)
	}
}

// TestEngineReplicasMatchShared checks a replicated engine answers exactly
// like an unreplicated one, across sequential queries, batches, and weight
// families.
func TestEngineReplicasMatchShared(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for _, additive := range []bool{false, true} {
		in := randomInput(r, []int{10, 9, 8}, true)
		if additive {
			in.ObjKinds = []WeightKind{AdditiveObjWeights, MultiplicativeObjWeights, AdditiveObjWeights}
		}
		plain, err := NewEngine(in, MBRB)
		if err != nil {
			t.Fatal(err)
		}
		in2 := in
		in2.Replicas = 3
		repl, err := NewEngine(in2, MBRB)
		if err != nil {
			t.Fatal(err)
		}
		if len(repl.replicas) != 3 {
			t.Fatalf("replicas not initialised: %d", len(repl.replicas))
		}
		vecs := batchVecs(r, 8, 3)
		for vi, tw := range vecs {
			want, err := plain.Query(tw)
			if err != nil {
				t.Fatal(err)
			}
			got, err := repl.Query(tw)
			if err != nil {
				t.Fatal(err)
			}
			if got.Loc != want.Loc || got.Cost != want.Cost {
				t.Fatalf("additive=%v vector %d: replica (%v, %v) != shared (%v, %v)",
					additive, vi, got.Loc, got.Cost, want.Loc, want.Cost)
			}
		}
		wantB, err := plain.QueryBatch(vecs)
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := repl.QueryBatch(vecs)
		if err != nil {
			t.Fatal(err)
		}
		for vi := range wantB {
			if gotB[vi].Loc != wantB[vi].Loc || gotB[vi].Cost != wantB[vi].Cost {
				t.Fatalf("additive=%v batch vector %d: replica (%v, %v) != shared (%v, %v)",
					additive, vi, gotB[vi].Loc, gotB[vi].Cost, wantB[vi].Loc, wantB[vi].Cost)
			}
		}
	}
}

// TestEngineReplicasRefreshOnMutation checks a replica claimed under an old
// snapshot version re-copies the flat arrays after a mutation, so stale
// replicas can never answer for a newer engine state.
func TestEngineReplicasRefreshOnMutation(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	in := randomInput(r, []int{8, 8}, false)
	in.Replicas = 2
	eng, err := NewEngine(in, MBRB)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := NewEngine(randomInput(rand.New(rand.NewSource(13)), []int{8, 8}, false), MBRB)
	if err != nil {
		t.Fatal(err)
	}
	tw := []float64{2, 3}
	// Warm every replica slot on version 1.
	for i := 0; i < len(eng.replicas)+1; i++ {
		if _, err := eng.Query(tw); err != nil {
			t.Fatal(err)
		}
	}
	obj := core.Object{Type: 0, ID: 1000, Loc: geom.Pt(211, 347), ObjWeight: 1}
	if _, err := eng.InsertObject(obj); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.InsertObject(obj); err != nil {
		t.Fatal(err)
	}
	want, err := plain.Query(tw)
	if err != nil {
		t.Fatal(err)
	}
	// Query enough times to hit every (stale) replica slot.
	for i := 0; i < len(eng.replicas)+1; i++ {
		got, err := eng.Query(tw)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got.Cost-want.Cost) > 1e-9*(1+want.Cost) || got.Loc.Dist(want.Loc) > 1e-9 {
			t.Fatalf("query %d after mutation: (%v, %v), want (%v, %v)", i, got.Loc, got.Cost, want.Loc, want.Cost)
		}
	}
}

// TestEngineReplicasConcurrent hammers a replicated engine from many
// goroutines (meaningful under -race): replica claiming, lazy refresh and
// arena reuse must never corrupt results.
func TestEngineReplicasConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	in := randomInput(r, []int{10, 10}, false)
	in.Replicas = 4
	eng, err := NewEngine(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	vecs := batchVecs(r, 6, 2)
	want := make([]Result, len(vecs))
	for vi, tw := range vecs {
		want[vi], err = eng.Query(tw)
		if err != nil {
			t.Fatal(err)
		}
	}
	wantB, err := eng.QueryBatch(vecs)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 20; it++ {
				vi := (g + it) % len(vecs)
				if it%5 == 4 {
					out, err := eng.QueryBatch(vecs)
					if err != nil {
						errs <- err
						return
					}
					for i := range out {
						if out[i].Loc != wantB[i].Loc || out[i].Cost != wantB[i].Cost {
							errs <- replicaMismatch(i, out[i], wantB[i])
							return
						}
					}
					continue
				}
				got, err := eng.Query(vecs[vi])
				if err != nil {
					errs <- err
					return
				}
				if got.Loc != want[vi].Loc || got.Cost != want[vi].Cost {
					errs <- replicaMismatch(vi, got, want[vi])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func replicaMismatch(vi int, got, want Result) error {
	return &replicaMismatchError{vi: vi, got: got, want: want}
}

type replicaMismatchError struct {
	vi        int
	got, want Result
}

func (e *replicaMismatchError) Error() string {
	return "vector result mismatch under concurrency"
}
