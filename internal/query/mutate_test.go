package query

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"molq/internal/core"
	"molq/internal/geom"
)

// mutModel mirrors an engine's evolving object sets so tests can rebuild the
// ground truth from scratch at any point.
type mutModel struct {
	sets   [][]core.Object
	nextID int
}

func newMutModel(in Input) *mutModel {
	m := &mutModel{sets: make([][]core.Object, len(in.Sets))}
	for ti, set := range in.Sets {
		m.sets[ti] = append([]core.Object(nil), set...)
		for _, o := range set {
			if o.ID >= m.nextID {
				m.nextID = o.ID + 1
			}
		}
	}
	return m
}

// randomOp applies one random insert or delete to both the engine and the
// model, keeping every type at two or more objects.
func (m *mutModel) randomOp(t *testing.T, r *rand.Rand, e *Engine) UpdateStats {
	t.Helper()
	ti := r.Intn(len(m.sets))
	set := m.sets[ti]
	if r.Float64() < 0.45 && len(set) > 2 {
		at := r.Intn(len(set))
		id := set[at].ID
		us, err := e.DeleteObject(ti, id)
		if err != nil {
			t.Fatalf("delete type %d id %d: %v", ti, id, err)
		}
		m.sets[ti] = append(append([]core.Object(nil), set[:at]...), set[at+1:]...)
		return us
	}
	obj := core.Object{
		ID:         m.nextID,
		Type:       ti,
		Loc:        geom.Pt(r.Float64()*1000, r.Float64()*1000),
		TypeWeight: set[0].TypeWeight,
		ObjWeight:  set[0].ObjWeight,
	}
	m.nextID++
	us, err := e.InsertObject(obj)
	if err != nil {
		t.Fatalf("insert type %d id %d: %v", ti, obj.ID, err)
	}
	m.sets[ti] = append(append([]core.Object(nil), set...), obj)
	return us
}

func (m *mutModel) input(base Input) Input {
	in := base
	in.Sets = make([][]core.Object, len(m.sets))
	for ti := range m.sets {
		in.Sets[ti] = append([]core.Object(nil), m.sets[ti]...)
	}
	return in
}

// TestMutationEquivalence is the correctness contract of the tentpole: after
// hundreds of random inserts and deletes, a mutated engine must answer
// exactly like an engine freshly prepared over the final object sets — for
// both boundary modes — while concurrent queries hammer every intermediate
// version (the -race run proves snapshot isolation).
func TestMutationEquivalence(t *testing.T) {
	const ops = 220
	for _, method := range []Method{RRB, MBRB} {
		t.Run(method.String(), func(t *testing.T) {
			r := rand.New(rand.NewSource(4242 + int64(method)))
			in := randomInput(r, []int{14, 11, 9}, true)
			in.DisableDiagramCache = true
			eng, err := NewEngine(in, method)
			if err != nil {
				t.Fatal(err)
			}
			model := newMutModel(in)
			weights := []float64{1.5, 0.7, 3.2}

			// Concurrent readers: every loaded snapshot must be internally
			// consistent, so Query must never error and must return a cost
			// achievable at its own location.
			var stop atomic.Bool
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for !stop.Load() {
						res, err := eng.Query(weights)
						if err != nil {
							t.Errorf("concurrent query: %v", err)
							return
						}
						if math.IsNaN(res.Cost) || res.Cost <= 0 {
							t.Errorf("concurrent query: bad cost %v", res.Cost)
							return
						}
					}
				}()
			}

			incremental := 0
			for i := 0; i < ops; i++ {
				us := model.randomOp(t, r, eng)
				if !us.Rebuilt {
					incremental++
				}
			}
			stop.Store(true)
			wg.Wait()
			if t.Failed() {
				return
			}
			if incremental < ops*3/4 {
				t.Fatalf("only %d/%d mutations repaired incrementally", incremental, ops)
			}
			if got, want := eng.Version(), int64(1+ops); got != want {
				t.Fatalf("version = %d, want %d", got, want)
			}

			fresh, err := NewEngine(model.input(in), method)
			if err != nil {
				t.Fatal(err)
			}
			if eng.Combinations() != fresh.Combinations() {
				t.Fatalf("combinations: mutated %d, fresh %d", eng.Combinations(), fresh.Combinations())
			}
			got, err := eng.Query(weights)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.Query(weights)
			if err != nil {
				t.Fatal(err)
			}
			if relDiff(got.Cost, want.Cost) > 1e-9 {
				t.Fatalf("cost: mutated %.12g, fresh %.12g", got.Cost, want.Cost)
			}
			// The optimum location must score equally under both engines'
			// MWGD (locations may differ on exact cost ties).
			if relDiff(eng.MWGDAt(got.Loc, weights), fresh.MWGDAt(got.Loc, weights)) > 1e-9 {
				t.Fatalf("MWGD disagreement at %v", got.Loc)
			}
		})
	}
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 1 {
		return d / m
	}
	return d
}

// TestMutationValidation pins every rejection path: all of them must leave
// the engine's published version untouched.
func TestMutationValidation(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	in := randomInput(r, []int{5, 4}, false)
	eng, err := NewEngine(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	v0 := eng.Version()
	cases := []struct {
		name string
		err  error
		run  func() error
	}{
		{"bad type insert", ErrBadType, func() error {
			_, err := eng.InsertObject(core.Object{Type: 9, ID: 100, Loc: geom.Pt(1, 1), ObjWeight: 1})
			return err
		}},
		{"bad type delete", ErrBadType, func() error {
			_, err := eng.DeleteObject(-1, 0)
			return err
		}},
		{"bad weight", ErrBadWeight, func() error {
			_, err := eng.InsertObject(core.Object{Type: 0, ID: 100, Loc: geom.Pt(1, 1)})
			return err
		}},
		{"duplicate id", ErrDuplicateID, func() error {
			_, err := eng.InsertObject(core.Object{Type: 0, ID: 0, Loc: geom.Pt(1, 1), ObjWeight: 1})
			return err
		}},
		{"duplicate location", ErrDuplicateLocation, func() error {
			_, err := eng.InsertObject(core.Object{Type: 0, ID: 100, Loc: in.Sets[0][0].Loc, ObjWeight: 1})
			return err
		}},
		{"unknown object", ErrUnknownObject, func() error {
			_, err := eng.DeleteObject(0, 12345)
			return err
		}},
		{"weighted insert under exact-forced RRB", ErrWeightedRRB, func() error {
			// WeightedEpsilon < 0 forbids the approximate weighted cell
			// fallback, so a non-uniform insert must be rejected. (The
			// default engine above would instead rebuild onto approximate
			// weighted RRB cells.)
			exIn := in
			exIn.WeightedEpsilon = -1
			exactEng, err := NewEngine(exIn, RRB)
			if err != nil {
				return err
			}
			_, err = exactEng.InsertObject(core.Object{Type: 0, ID: 100, Loc: geom.Pt(1, 1), ObjWeight: 2})
			return err
		}},
	}
	for _, tc := range cases {
		if err := tc.run(); !errors.Is(err, tc.err) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.err)
		}
	}
	// Deleting a type down to one object, then once more, must fail.
	for i := 1; i < len(in.Sets[1]); i++ {
		if _, err := eng.DeleteObject(1, in.Sets[1][i].ID); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := eng.DeleteObject(1, in.Sets[1][0].ID); !errors.Is(err, ErrLastObject) {
		t.Fatalf("last object: got %v", err)
	}
	if got := eng.Version(); got != v0+int64(len(in.Sets[1])-1) {
		t.Fatalf("version advanced by rejected mutations: %d", got)
	}
}

// TestMutationWeightedRebuild pins the fallback: inserting a different
// object weight under MBRB demotes the type to weighted diagrams, which have
// no incremental path — the mutation must repair by full rebuild and still
// answer exactly like a fresh engine.
func TestMutationWeightedRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	in := randomInput(r, []int{6, 5}, false)
	in.DisableDiagramCache = true
	eng, err := NewEngine(in, MBRB)
	if err != nil {
		t.Fatal(err)
	}
	obj := core.Object{ID: 100, Type: 0, Loc: geom.Pt(321.5, 456.5), TypeWeight: 1, ObjWeight: 3}
	us, err := eng.InsertObject(obj)
	if err != nil {
		t.Fatal(err)
	}
	if !us.Rebuilt {
		t.Fatal("weighted insert must repair by rebuild")
	}
	in2 := in
	in2.Sets = [][]core.Object{append(append([]core.Object(nil), in.Sets[0]...), obj), in.Sets[1]}
	fresh, err := NewEngine(in2, MBRB)
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{2, 1}
	got, _ := eng.Query(w)
	want, _ := fresh.Query(w)
	if relDiff(got.Cost, want.Cost) > 1e-9 {
		t.Fatalf("cost: mutated %.12g, fresh %.12g", got.Cost, want.Cost)
	}
}

// TestMutationAfterSnapshotLoad pins the snapshot interaction: a loaded
// engine retains no basic diagrams, so its first mutation repairs by full
// rebuild — and thereby re-arms the incremental path for the next one.
func TestMutationAfterSnapshotLoad(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	in := randomInput(r, []int{7, 6}, false)
	in.DisableDiagramCache = true
	eng, err := NewEngine(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	us, err := loaded.InsertObject(core.Object{ID: 100, Type: 0, Loc: geom.Pt(77, 88), TypeWeight: 1, ObjWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !us.Rebuilt {
		t.Fatal("first mutation of a loaded engine must rebuild")
	}
	us, err = loaded.InsertObject(core.Object{ID: 101, Type: 0, Loc: geom.Pt(99, 111), TypeWeight: 1, ObjWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if us.Rebuilt {
		t.Fatal("second mutation should repair incrementally")
	}
	if us.Version != 3 {
		t.Fatalf("version = %d, want 3", us.Version)
	}
}

// TestMutationCacheAdvance pins the fingerprint choreography: after a
// mutation, the superseded diagrams are out of the cache and the repaired
// ones are seeded, so preparing a fresh engine over the mutated sets is all
// cache hits.
func TestMutationCacheAdvance(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	cache := NewDiagramCache(1 << 24)
	in := randomInput(r, []int{8, 7}, false)
	in.Cache = cache
	eng, err := NewEngine(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	us, err := eng.InsertObject(core.Object{ID: 100, Type: 1, Loc: geom.Pt(500.5, 250.25), TypeWeight: 1, ObjWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if us.Rebuilt {
		t.Fatal("expected incremental repair")
	}
	st := eng.state.Load()
	in2 := in
	in2.Sets = st.sets
	fresh, err := NewEngine(in2, RRB)
	if err != nil {
		t.Fatal(err)
	}
	cs := fresh.CacheStats()
	if cs.Misses != 0 || cs.Hits != len(in.Sets)+1 {
		t.Fatalf("fresh prepare over mutated sets: hits=%d misses=%d, want all %d hits",
			cs.Hits, cs.Misses, len(in.Sets)+1)
	}
	got, _ := eng.Query([]float64{1, 1})
	want, _ := fresh.Query([]float64{1, 1})
	if relDiff(got.Cost, want.Cost) > 1e-9 {
		t.Fatalf("cost: mutated %.12g, fresh %.12g", got.Cost, want.Cost)
	}
}

// TestMutationSingleType pins the degenerate chain: a one-type engine's MOVD
// is its basic diagram, and splicing with zero other operands must still be
// exact.
func TestMutationSingleType(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	in := randomInput(r, []int{12}, false)
	in.DisableDiagramCache = true
	eng, err := NewEngine(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	model := newMutModel(in)
	for i := 0; i < 40; i++ {
		model.randomOp(t, r, eng)
	}
	fresh, err := NewEngine(model.input(in), RRB)
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{1}
	got, _ := eng.Query(w)
	want, _ := fresh.Query(w)
	if relDiff(got.Cost, want.Cost) > 1e-9 {
		t.Fatalf("cost: mutated %.12g, fresh %.12g", got.Cost, want.Cost)
	}
	if eng.OVRs() != fresh.OVRs() {
		t.Fatalf("OVRs: mutated %d, fresh %d", eng.OVRs(), fresh.OVRs())
	}
}
