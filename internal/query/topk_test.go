package query

import (
	"math"
	"math/rand"
	"testing"

	"molq/internal/core"
)

func TestTopKHeadMatchesSolve(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	for _, method := range []Method{RRB, MBRB} {
		in := randomInput(r, []int{6, 7, 5}, true)
		in.Epsilon = 1e-8
		cands, err := TopK(in, method, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) == 0 {
			t.Fatal("no candidates")
		}
		best, err := Solve(in, method)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(cands[0].Cost-best.Cost) > 1e-6*best.Cost {
			t.Fatalf("%v: top-1 %v vs solve %v", method, cands[0].Cost, best.Cost)
		}
		for i := 1; i < len(cands); i++ {
			if cands[i].Cost < cands[i-1].Cost {
				t.Fatalf("%v: candidates out of order at %d", method, i)
			}
		}
		// Distinct locations.
		for i := 0; i < len(cands); i++ {
			for j := i + 1; j < len(cands); j++ {
				if cands[i].Loc.Dist(cands[j].Loc) < 1e-9 {
					t.Fatalf("%v: duplicate locations %d/%d", method, i, j)
				}
			}
		}
		// Every candidate carries its combination.
		for _, c := range cands {
			if len(c.Combination) != len(in.Sets) {
				t.Fatalf("%v: combination size %d", method, len(c.Combination))
			}
		}
	}
}

// TestTopKCombinationIsACopy pins that Candidate.Combination does not alias
// the engine's internal group storage: mutating a returned combination must
// leave the engine's combos — and therefore every later query against it —
// untouched.
func TestTopKCombinationIsACopy(t *testing.T) {
	r := rand.New(rand.NewSource(93))
	in := randomInput(r, []int{5, 4}, true)
	eng, err := NewEngine(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	combos := eng.state.Load().combos
	before := make([][]core.Object, len(combos))
	for i, combo := range combos {
		before[i] = append([]core.Object(nil), combo...)
	}
	cands, err := topKFromEngine(eng, &in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for i := range cands {
		for j := range cands[i].Combination {
			cands[i].Combination[j].ObjWeight = -1e9
			cands[i].Combination[j].ID = -7
		}
	}
	for i, combo := range combos {
		for j, o := range combo {
			if o != before[i][j] {
				t.Fatalf("combo %d[%d]: mutation of a TopK result leaked into engine storage: %+v", i, j, o)
			}
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	in := randomInput(r, []int{3, 3}, false)
	if got, err := TopK(in, RRB, 0); err != nil || got != nil {
		t.Fatalf("k=0: %v %v", got, err)
	}
	if _, err := TopK(in, SSC, 3); err == nil {
		t.Fatal("SSC TopK should be rejected")
	}
	// k larger than the number of distinct candidates: returns what exists.
	cands, err := TopK(in, RRB, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 || len(cands) > 9 {
		t.Fatalf("candidate count %d out of range", len(cands))
	}
}
