package query

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sort"
	"sync"

	"molq/internal/core"
	"molq/internal/geom"
	"molq/internal/obs"
)

// Live diagram-cache counters on the process-wide metrics registry,
// aggregated across every DiagramCache instance (a serving process holds
// one; tests may hold more). The per-instance CacheStats stay exact.
var (
	cacheHitsMetric = obs.Default.Counter("molq_diagram_cache_hits_total",
		"diagram-cache lookups that returned a memoized MOVD")
	cacheMissesMetric = obs.Default.Counter("molq_diagram_cache_misses_total",
		"diagram-cache lookups that fell through to diagram construction")
	cacheEvictionsMetric = obs.Default.Counter("molq_diagram_cache_evictions_total",
		"diagrams evicted from a cache to stay under its byte budget")
	cacheCoalescedMetric = obs.Default.Counter("molq_diagram_cache_coalesced_waits_total",
		"cache misses that waited on another goroutine's in-flight build instead of duplicating it")
	cacheInvalidationsMetric = obs.Default.Counter("molq_diagram_cache_invalidations_total",
		"diagrams dropped from a cache because an engine mutation superseded their fingerprint")
)

// This file implements the fingerprinted diagram cache: a content-addressed,
// byte-budgeted LRU memoizing diagrams at two levels. Level one is the
// per-type basic MOVDs the VD Generator (Module 1 of Fig 3) produces; level
// two is the final overlapped MOVD of the ⊕ chain (Module 2), keyed by the
// ordered basic fingerprints, so a fully warm Solve runs only the optimizer.
// A serving deployment re-derives the same diagrams over and over — every
// Solve over an unchanged object set, every NewEngine preparing the same
// data, every httpapi engine rebuilt after a restart. The cache keys on the
// content of the object set (IDs, locations, both weights), the search
// bounds, the boundary mode, the ς^o family and ε, so any semantic change
// misses while re-orderings of the same set hit.
//
// Cached diagrams are shared: callers receive the same *core.MOVD and must
// treat it as immutable. The whole pipeline already does — the sweep, the
// optimizer folding and the engine only read OVRs.

// fingerprint is the content hash identifying one basic diagram.
type fingerprint [sha256.Size]byte

// fingerprintSet hashes everything the basic MOVD of one object set depends
// on. Per-object digests are sorted before the final hash, so two sets with
// the same objects in different order produce the same fingerprint (the
// basic diagram is a set-level construct; OVR order is irrelevant to ⊕ and
// the optimizer). Epsilon does not influence the diagram itself but is
// hashed anyway: it keeps the key aligned with the full solve configuration,
// so a cache entry can never be blamed for a result produced under different
// solver settings. weightedEps, by contrast, is structural for weighted sets:
// it selects exact vs approximate construction and the approximation's cell
// resolution, so diagrams built under different weighted ε must never share
// an entry.
func fingerprintSet(set []core.Object, ti int, bounds geom.Rect, mode core.Mode, kind WeightKind, epsilon, weightedEps float64) fingerprint {
	digests := make([][sha256.Size]byte, len(set))
	for i, o := range set {
		var buf [48]byte
		binary.LittleEndian.PutUint64(buf[0:], uint64(int64(o.ID)))
		binary.LittleEndian.PutUint64(buf[8:], uint64(int64(o.Type)))
		binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(o.Loc.X))
		binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(o.Loc.Y))
		binary.LittleEndian.PutUint64(buf[32:], math.Float64bits(o.TypeWeight))
		binary.LittleEndian.PutUint64(buf[40:], math.Float64bits(o.ObjWeight))
		digests[i] = sha256.Sum256(buf[:])
	}
	sort.Slice(digests, func(i, j int) bool {
		return bytes.Compare(digests[i][:], digests[j][:]) < 0
	})
	h := sha256.New()
	var hdr [72]byte
	hdr[0] = 2 // fingerprint format version (2: weighted ε joined the header)
	hdr[1] = byte(mode)
	hdr[2] = byte(kind)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(int64(ti)))
	binary.LittleEndian.PutUint64(hdr[16:], math.Float64bits(bounds.Min.X))
	binary.LittleEndian.PutUint64(hdr[24:], math.Float64bits(bounds.Min.Y))
	binary.LittleEndian.PutUint64(hdr[32:], math.Float64bits(bounds.Max.X))
	binary.LittleEndian.PutUint64(hdr[40:], math.Float64bits(bounds.Max.Y))
	binary.LittleEndian.PutUint64(hdr[48:], math.Float64bits(epsilon))
	binary.LittleEndian.PutUint64(hdr[56:], uint64(len(set)))
	binary.LittleEndian.PutUint64(hdr[64:], math.Float64bits(weightedEps))
	h.Write(hdr[:])
	for i := range digests {
		h.Write(digests[i][:])
	}
	var fp fingerprint
	h.Sum(fp[:0])
	return fp
}

// fingerprintOverlap keys the final overlapped MOVD by the ordered basic
// fingerprints plus the pruning flag. Everything else the overlap depends on
// (bounds, mode, kind, ε, the sets themselves) is already inside the per-set
// fingerprints; Workers is deliberately excluded because the sequential fold
// and the parallel engine produce the identical diagram. Pruning changes the
// retained combinations, so pruned and unpruned results never share an entry.
func fingerprintOverlap(setFPs []fingerprint, pruned bool) fingerprint {
	h := sha256.New()
	var hdr [2]byte
	hdr[0] = 2 // level tag: overlapped diagram
	if pruned {
		hdr[1] = 1
	}
	h.Write(hdr[:])
	for i := range setFPs {
		h.Write(setFPs[i][:])
	}
	var fp fingerprint
	h.Sum(fp[:0])
	return fp
}

// movdBytes estimates the retained size of a diagram: slice payloads plus a
// fixed per-OVR overhead for headers and bookkeeping. An estimate is enough —
// the budget bounds memory order-of-magnitude, not byte-exactly.
func movdBytes(m *core.MOVD) int64 {
	const (
		ovrOverhead = 96 // OVR struct + slice headers
		objectSize  = 48 // core.Object
		vertexSize  = 16 // geom.Point
	)
	size := int64(128 + 8*len(m.Types))
	for i := range m.OVRs {
		o := &m.OVRs[i]
		size += ovrOverhead + int64(len(o.Region))*vertexSize + int64(len(o.POIs))*objectSize
	}
	return size
}

// CacheStats reports diagram-cache effectiveness. Hits and Misses are scoped
// to whatever produced the stats (one solve, one engine preparation, or the
// cache's lifetime totals from DiagramCache.Stats); Entries, Bytes and
// Capacity always snapshot the cache's current state.
type CacheStats struct {
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
	// Coalesced counts misses that did not build: the diagram was already
	// being built by another goroutine, so the lookup blocked on that one
	// in-flight construction instead of duplicating it.
	Coalesced int   `json:"coalesced,omitempty"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Capacity  int64 `json:"capacity"`
}

// HitRate returns Hits/(Hits+Misses), or 0 when no lookups happened.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Add accumulates o's lookup counters into s (snapshot fields take o's
// values, which are newer).
func (s *CacheStats) Add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Coalesced += o.Coalesced
	s.Entries = o.Entries
	s.Bytes = o.Bytes
	s.Capacity = o.Capacity
}

// DiagramCache memoizes basic MOVDs behind a byte-budgeted LRU. It is safe
// for concurrent use; the per-type goroutines of a parallel buildBasics and
// the httpapi's request handlers all share one instance. The zero value is
// not usable — construct with NewDiagramCache.
type DiagramCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	ll     *list.List // front = most recently used; values are *cacheEntry
	items  map[fingerprint]*list.Element
	// inflight coalesces concurrent misses on one fingerprint: the first
	// misser registers a flight and builds; everyone else arriving before the
	// build finishes blocks on the flight's done channel and shares the one
	// result (or the one error) instead of duplicating the construction.
	inflight  map[fingerprint]*flight
	hits      int
	misses    int
	coalesced int
}

type cacheEntry struct {
	key  fingerprint
	movd *core.MOVD
	size int64
}

// flight is one in-progress diagram build other lookups can wait on.
type flight struct {
	done chan struct{} // closed when movd/err are final
	movd *core.MOVD
	err  error
}

// lookupOutcome classifies what a getOrBuild lookup did.
type lookupOutcome uint8

const (
	lookupHit       lookupOutcome = iota // served from the cache
	lookupBuilt                          // missed and ran the build itself
	lookupCoalesced                      // missed but waited on an in-flight build
)

// DefaultCacheBytes is the byte budget of the process-wide default cache:
// large enough for the paper's biggest per-type diagrams (n=10000 RRB cells
// are a few MB) across several object sets, small enough to be irrelevant
// next to a serving process's working set.
const DefaultCacheBytes int64 = 64 << 20

// DefaultDiagramCache is the process-wide cache used when Input.Cache is nil.
// Repeated Solve calls, NewEngine preparations and httpapi engines all share
// it by default.
var DefaultDiagramCache = NewDiagramCache(DefaultCacheBytes)

// NewDiagramCache creates a cache evicting least-recently-used diagrams once
// the estimated retained bytes exceed byteBudget (≤0 uses DefaultCacheBytes).
func NewDiagramCache(byteBudget int64) *DiagramCache {
	if byteBudget <= 0 {
		byteBudget = DefaultCacheBytes
	}
	return &DiagramCache{
		budget:   byteBudget,
		ll:       list.New(),
		items:    make(map[fingerprint]*list.Element),
		inflight: make(map[fingerprint]*flight),
	}
}

// get returns the cached diagram for key, bumping its recency.
func (c *DiagramCache) get(key fingerprint) (*core.MOVD, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		cacheHitsMetric.Inc()
		return el.Value.(*cacheEntry).movd, true
	}
	c.misses++
	cacheMissesMetric.Inc()
	return nil, false
}

// getOrBuild returns the diagram for key, building it with build on a miss.
// Concurrent calls for the same missing key are coalesced: exactly one runs
// build, the rest block until it finishes and share its result. A failed
// build is not cached — every waiter receives the error and the next lookup
// retries. build runs without the cache lock held, so distinct keys build
// concurrently.
func (c *DiagramCache) getOrBuild(key fingerprint, build func() (*core.MOVD, error)) (*core.MOVD, lookupOutcome, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		m := el.Value.(*cacheEntry).movd
		c.mu.Unlock()
		cacheHitsMetric.Inc()
		return m, lookupHit, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.coalesced++
		c.mu.Unlock()
		cacheCoalescedMetric.Inc()
		<-f.done
		return f.movd, lookupCoalesced, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.inflight[key] = f
	c.misses++
	c.mu.Unlock()
	cacheMissesMetric.Inc()
	f.movd, f.err = build()
	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil {
		c.putLocked(key, f.movd)
	}
	c.mu.Unlock()
	close(f.done)
	return f.movd, lookupBuilt, f.err
}

// put inserts a freshly built diagram, evicting LRU entries past the byte
// budget. A diagram larger than the whole budget is not cached at all. If the
// key is already present (two goroutines raced on the same miss) the existing
// entry wins, so all callers keep sharing one diagram.
func (c *DiagramCache) put(key fingerprint, m *core.MOVD) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(key, m)
}

func (c *DiagramCache) putLocked(key fingerprint, m *core.MOVD) {
	size := movdBytes(m)
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return
	}
	if size > c.budget {
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, movd: m, size: size})
	c.bytes += size
	for c.bytes > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.bytes -= e.size
		cacheEvictionsMetric.Inc()
	}
}

// invalidate removes the entry for key, reporting whether one was present.
// Engine mutations call it to retire diagrams whose object set no longer
// exists anywhere (the pre-mutation basic of the mutated type and the
// pre-mutation overlapped chain); shared *MOVD pointers held by readers stay
// valid — only the cache's reference is dropped. In-flight builds of the key
// are unaffected: their owners repopulate the entry when they finish, which
// is correct because a content-addressed entry is never wrong, merely stale
// for this engine.
func (c *DiagramCache) invalidate(key fingerprint) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	e := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, key)
	c.bytes -= e.size
	cacheInvalidationsMetric.Inc()
	return true
}

// Stats snapshots the cache state with lifetime hit/miss totals.
func (c *DiagramCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Coalesced: c.coalesced,
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
		Capacity:  c.budget,
	}
}

// Reset drops every entry and zeroes the lifetime counters; benchmarks use
// it to measure cold-cache behaviour without constructing fresh caches.
func (c *DiagramCache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[fingerprint]*list.Element)
	c.bytes = 0
	c.hits = 0
	c.misses = 0
	c.coalesced = 0
	// In-flight builds are left alone: their owners delete the entries when
	// they finish, and a post-reset putLocked simply repopulates the cache.
}

// GobEncode implements gob.GobEncoder: a cache is runtime wiring, not data —
// engine snapshots never persist its contents (and Save nils the Input.Cache
// field anyway; this hook only keeps gob's type registration happy).
func (c *DiagramCache) GobEncode() ([]byte, error) { return nil, nil }

// GobDecode implements gob.GobDecoder, restoring a usable empty cache with
// the default budget.
func (c *DiagramCache) GobDecode([]byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = DefaultCacheBytes
	c.bytes = 0
	c.ll = list.New()
	c.items = make(map[fingerprint]*list.Element)
	c.inflight = make(map[fingerprint]*flight)
	return nil
}

// cache resolves which cache an input uses: its own, the process default, or
// none.
func (in *Input) diagramCache() *DiagramCache {
	if in.DisableDiagramCache {
		return nil
	}
	if in.Cache != nil {
		return in.Cache
	}
	return DefaultDiagramCache
}
