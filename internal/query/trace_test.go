package query

import (
	"strings"
	"testing"

	"molq/internal/core"
	"molq/internal/geom"
)

// traceInput builds a small three-type instance for trace tests.
func traceInput(t testing.TB) Input {
	t.Helper()
	mk := func(ti int, pts ...geom.Point) []core.Object {
		set := make([]core.Object, len(pts))
		for i, p := range pts {
			set[i] = core.Object{ID: i, Type: ti, Loc: p, TypeWeight: 1, ObjWeight: 1}
		}
		return set
	}
	return Input{
		Sets: [][]core.Object{
			mk(0, geom.Pt(10, 10), geom.Pt(90, 20), geom.Pt(40, 80)),
			mk(1, geom.Pt(20, 70), geom.Pt(70, 60)),
			mk(2, geom.Pt(50, 30), geom.Pt(30, 40)),
		},
		Bounds:              geom.NewRect(geom.Pt(0, 0), geom.Pt(100, 100)),
		DisableDiagramCache: true,
	}
}

// TestSolveTraceOff pins the default: no Input.Trace, no span tree.
func TestSolveTraceOff(t *testing.T) {
	res, err := Solve(traceInput(t), RRB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Trace != nil {
		t.Fatal("Stats.Trace non-nil without Input.Trace")
	}
}

// TestSolveTracePhases checks the span tree exists, has the three Fig-3
// module spans, and that their durations equal the Stats phase durations
// exactly (they are set from the same measurement).
func TestSolveTracePhases(t *testing.T) {
	for _, method := range []Method{RRB, MBRB} {
		in := traceInput(t)
		in.Trace = true
		in.PruneOverlap = true
		res, err := Solve(in, method)
		if err != nil {
			t.Fatal(err)
		}
		root := res.Stats.Trace
		if root == nil {
			t.Fatalf("%v: no trace", method)
		}
		if root.Duration != res.Stats.TotalTime {
			t.Errorf("%v: root duration %v != TotalTime %v", method, root.Duration, res.Stats.TotalTime)
		}
		vd := root.Find("vd-build")
		if vd == nil || vd.Duration != res.Stats.VDTime {
			t.Errorf("%v: vd-build span mismatch (span=%v, stats=%v)", method, vd, res.Stats.VDTime)
		}
		if got := len(vd.Children()); got != len(in.Sets) {
			t.Errorf("%v: vd-build has %d children, want %d", method, got, len(in.Sets))
		}
		ov := root.Find("overlap")
		if ov == nil || ov.Duration != res.Stats.OverlapTime {
			t.Errorf("%v: overlap span mismatch", method)
		}
		if ov.Find("prune-bound") == nil {
			t.Errorf("%v: missing prune-bound span under overlap", method)
		}
		if ov.Find("⊕ 1") == nil || ov.Find("⊕ 2") == nil {
			t.Errorf("%v: missing per-⊕ spans", method)
		}
		opt := root.Find("optimize")
		if opt == nil || opt.Duration != res.Stats.OptimizeTime {
			t.Errorf("%v: optimize span mismatch", method)
		}
	}
}

// TestSolveTraceParallel checks the sharded engine emits per-pair and
// per-strip spans.
func TestSolveTraceParallel(t *testing.T) {
	in := traceInput(t)
	in.Trace = true
	in.Workers = 4
	res, err := Solve(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	ov := res.Stats.Trace.Find("overlap")
	if ov == nil {
		t.Fatal("no overlap span")
	}
	foundPair, foundStrip := false, false
	for _, c := range ov.Children() {
		if strings.HasPrefix(c.Name, "⊕ round") {
			foundPair = true
			for _, g := range c.Children() {
				if strings.HasPrefix(g.Name, "strip ") || g.Name == "sweep" {
					foundStrip = true
				}
			}
		}
	}
	if !foundPair || !foundStrip {
		t.Fatalf("parallel trace missing pair/strip spans (pair=%v strip=%v)", foundPair, foundStrip)
	}
}

// TestSolveTraceSSC checks the SSC path traces its single optimize phase.
func TestSolveTraceSSC(t *testing.T) {
	in := traceInput(t)
	in.Trace = true
	res, err := Solve(in, SSC)
	if err != nil {
		t.Fatal(err)
	}
	root := res.Stats.Trace
	if root == nil || root.Duration != res.Stats.TotalTime {
		t.Fatal("SSC trace missing or duration mismatch")
	}
	opt := root.Find("optimize")
	if opt == nil || opt.Duration != res.Stats.OptimizeTime {
		t.Fatal("SSC optimize span mismatch")
	}
}

// TestEngineQueryTrace checks Engine.Query honors Input.Trace.
func TestEngineQueryTrace(t *testing.T) {
	in := traceInput(t)
	in.Trace = true
	eng, err := NewEngine(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	root := res.Stats.Trace
	if root == nil {
		t.Fatal("engine query produced no trace")
	}
	opt := root.Find("optimize")
	if opt == nil || opt.Duration != res.Stats.OptimizeTime {
		t.Fatal("engine optimize span mismatch")
	}
}

// TestSolveTraceSpill checks the out-of-core path still closes the phase
// spans with the Stats durations.
func TestSolveTraceSpill(t *testing.T) {
	in := traceInput(t)
	in.Trace = true
	in.SpillDir = t.TempDir()
	res, err := Solve(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	root := res.Stats.Trace
	if root == nil || root.Duration != res.Stats.TotalTime {
		t.Fatal("spill trace missing or duration mismatch")
	}
	ov := root.Find("overlap")
	if ov == nil || ov.Duration != res.Stats.OverlapTime {
		t.Fatal("spill overlap span mismatch")
	}
	if ov.Find("⊕ spill") == nil {
		t.Fatal("missing ⊕ spill span")
	}
	opt := root.Find("optimize")
	if opt == nil || opt.Duration != res.Stats.OptimizeTime {
		t.Fatal("spill optimize span mismatch")
	}
}
