package query

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestSpillDirMatchesInMemory(t *testing.T) {
	r := rand.New(rand.NewSource(121))
	for _, method := range []Method{RRB, MBRB} {
		for _, sizes := range [][]int{{8, 9}, {6, 7, 5}} {
			in := randomInput(r, sizes, true)
			in.Epsilon = 1e-7
			mem, err := Solve(in, method)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			in.SpillDir = dir
			disk, err := Solve(in, method)
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(disk.Cost-mem.Cost) / math.Max(mem.Cost, 1); rel > 1e-9 {
				t.Fatalf("%v sizes %v: spilled cost %v vs in-memory %v",
					method, sizes, disk.Cost, mem.Cost)
			}
			if disk.Stats.OVRs != mem.Stats.OVRs {
				t.Fatalf("%v sizes %v: OVRs %d vs %d", method, sizes, disk.Stats.OVRs, mem.Stats.OVRs)
			}
			if disk.Stats.Groups != mem.Stats.Groups {
				t.Fatalf("%v sizes %v: groups %d vs %d", method, sizes, disk.Stats.Groups, mem.Stats.Groups)
			}
			// The temporary spill file must be gone.
			matches, _ := filepath.Glob(filepath.Join(dir, "molq-spill-*"))
			if len(matches) != 0 {
				t.Fatalf("spill file leaked: %v", matches)
			}
		}
	}
}

func TestSpillDirWithPruning(t *testing.T) {
	r := rand.New(rand.NewSource(122))
	in := randomInput(r, []int{12, 12, 12}, false)
	in.Epsilon = 1e-6
	plain, err := Solve(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	in.SpillDir = t.TempDir()
	in.PruneOverlap = true
	spilled, err := Solve(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(spilled.Cost-plain.Cost) / plain.Cost; rel > 1e-9 {
		t.Fatalf("pruned+spilled cost %v vs plain %v", spilled.Cost, plain.Cost)
	}
}

func TestSpillDirAdditive(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	in := additiveInput(r, []int{5, 6})
	mem, err := Solve(in, MBRB)
	if err != nil {
		t.Fatal(err)
	}
	in.SpillDir = t.TempDir()
	disk, err := Solve(in, MBRB)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(disk.Cost-mem.Cost) / math.Max(mem.Cost, 1); rel > 1e-9 {
		t.Fatalf("additive spill cost %v vs %v", disk.Cost, mem.Cost)
	}
}

func TestSpillDirBadDirectory(t *testing.T) {
	r := rand.New(rand.NewSource(124))
	in := randomInput(r, []int{3, 3}, false)
	in.SpillDir = filepath.Join(os.TempDir(), "definitely", "not", "a", "dir")
	if _, err := Solve(in, RRB); err == nil {
		t.Fatal("unwritable spill dir should fail")
	}
}
