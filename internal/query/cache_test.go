package query

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"molq/internal/core"
	"molq/internal/geom"
)

// cacheInput builds a deterministic two-type input wired to a private cache,
// so tests never interfere through DefaultDiagramCache.
func cacheInput(seed int64, cache *DiagramCache) Input {
	in := randomInput(rand.New(rand.NewSource(seed)), []int{40, 30}, true)
	in.Cache = cache
	return in
}

// TestCacheHitOnRepeatAndReorder checks the fingerprint hits on an identical
// re-solve and on the same sets in permuted order, and that the cached solve
// returns the same answer.
func TestCacheHitOnRepeatAndReorder(t *testing.T) {
	cache := NewDiagramCache(0)
	in := cacheInput(7, cache)
	cold, err := Solve(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	// Three lookups per two-set solve: one per basic diagram plus the
	// overlapped diagram.
	if cold.Stats.Cache.Hits != 0 || cold.Stats.Cache.Misses != 3 {
		t.Fatalf("cold solve: hits=%d misses=%d, want 0/3", cold.Stats.Cache.Hits, cold.Stats.Cache.Misses)
	}
	if cold.Stats.Cache.Entries != 3 || cold.Stats.Cache.Bytes <= 0 {
		t.Fatalf("cold solve left entries=%d bytes=%d", cold.Stats.Cache.Entries, cold.Stats.Cache.Bytes)
	}

	warm, err := Solve(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.Cache.Hits != 3 || warm.Stats.Cache.Misses != 0 {
		t.Fatalf("warm solve: hits=%d misses=%d, want 3/0", warm.Stats.Cache.Hits, warm.Stats.Cache.Misses)
	}
	if warm.Loc != cold.Loc || warm.Cost != cold.Cost {
		t.Fatalf("warm result (%v, %v) != cold (%v, %v)", warm.Loc, warm.Cost, cold.Loc, cold.Cost)
	}

	// Reverse every set: same content, different order — must still hit.
	perm := in
	perm.Sets = make([][]core.Object, len(in.Sets))
	for ti, set := range in.Sets {
		rev := make([]core.Object, len(set))
		for i, o := range set {
			rev[len(set)-1-i] = o
		}
		perm.Sets[ti] = rev
	}
	reordered, err := Solve(perm, RRB)
	if err != nil {
		t.Fatal(err)
	}
	if reordered.Stats.Cache.Hits != 3 {
		t.Fatalf("reordered solve: hits=%d, want 3", reordered.Stats.Cache.Hits)
	}
	if math.Abs(reordered.Cost-cold.Cost) > 1e-9*(1+cold.Cost) {
		t.Fatalf("reordered cost %v != cold cost %v", reordered.Cost, cold.Cost)
	}
}

// TestCacheMissOnMutation checks every semantic change to the input produces
// a fingerprint miss: moved object, changed ObjWeight, changed TypeWeight,
// changed ID, different Bounds, Epsilon, Mode (method) and weight kind.
func TestCacheMissOnMutation(t *testing.T) {
	// Basic caching is per object set, so a mutation inside one set must miss
	// for that set while the untouched set still hits (wantHits 1); input-wide
	// changes (bounds, epsilon, kind) must miss for every set (wantHits 0).
	// The overlapped diagram depends on every set, so it misses in all cases:
	// misses = 3 - wantHits.
	mutations := []struct {
		name     string
		mutate   func(in *Input)
		wantHits int
	}{
		{"moved object", func(in *Input) {
			in.Sets[0][3].Loc = in.Sets[0][3].Loc.Add(geom.Pt(0.5, 0))
		}, 1},
		{"changed ObjWeight", func(in *Input) {
			in.Sets[1][0].ObjWeight *= 2
		}, 1},
		{"changed TypeWeight", func(in *Input) {
			for i := range in.Sets[0] {
				in.Sets[0][i].TypeWeight *= 3
			}
		}, 1},
		{"changed ID", func(in *Input) {
			in.Sets[0][5].ID += 1000
		}, 1},
		{"different Bounds", func(in *Input) {
			in.Bounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(999, 1000))
		}, 0},
		{"different Epsilon", func(in *Input) {
			in.Epsilon = 1e-7
		}, 0},
		{"different weight kind", func(in *Input) {
			in.ObjKinds = []WeightKind{AdditiveObjWeights, AdditiveObjWeights}
		}, 0},
	}
	for _, tc := range mutations {
		t.Run(tc.name, func(t *testing.T) {
			cache := NewDiagramCache(0)
			base := cacheInput(11, cache)
			if _, err := Solve(base, MBRB); err != nil {
				t.Fatal(err)
			}
			mutated := cacheInput(11, cache)
			tc.mutate(&mutated)
			res, err := Solve(mutated, MBRB)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.Cache.Hits != tc.wantHits || res.Stats.Cache.Misses != 3-tc.wantHits {
				t.Fatalf("%s: hits=%d misses=%d, want %d/%d", tc.name,
					res.Stats.Cache.Hits, res.Stats.Cache.Misses, tc.wantHits, 3-tc.wantHits)
			}
		})
	}

	// Mode is keyed too: the same input solved as RRB then MBRB shares
	// nothing.
	cache := NewDiagramCache(0)
	in := cacheInput(11, cache)
	if _, err := Solve(in, RRB); err != nil {
		t.Fatal(err)
	}
	res, err := Solve(in, MBRB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cache.Hits != 0 {
		t.Fatalf("MBRB solve hit RRB entries: hits=%d", res.Stats.Cache.Hits)
	}
}

// TestCacheDisabled checks DisableDiagramCache bypasses lookups entirely.
func TestCacheDisabled(t *testing.T) {
	cache := NewDiagramCache(0)
	in := cacheInput(3, cache)
	in.DisableDiagramCache = true
	res, err := Solve(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cache != (CacheStats{}) {
		t.Fatalf("disabled cache still reported stats: %+v", res.Stats.Cache)
	}
	if got := cache.Stats(); got.Entries != 0 || got.Hits+got.Misses != 0 {
		t.Fatalf("disabled solve touched the cache: %+v", got)
	}
}

// TestCacheEviction checks the LRU respects its byte budget and evicts the
// least recently used diagram first.
func TestCacheEviction(t *testing.T) {
	// Build three single-type diagrams and size the budget to hold ~two.
	r := rand.New(rand.NewSource(21))
	inputs := make([]Input, 3)
	for i := range inputs {
		inputs[i] = randomInput(r, []int{30}, false)
	}
	probe := NewDiagramCache(1 << 30)
	sizes := make([]int64, len(inputs))
	for i := range inputs {
		inputs[i].Cache = probe
		if _, err := Solve(inputs[i], RRB); err != nil {
			t.Fatal(err)
		}
		sizes[i] = probe.Stats().Bytes - sumInt64(sizes[:i])
	}

	budget := sizes[0] + sizes[1] + sizes[2]/2
	cache := NewDiagramCache(budget)
	for i := range inputs {
		inputs[i].Cache = cache
		if _, err := Solve(inputs[i], RRB); err != nil {
			t.Fatal(err)
		}
	}
	st := cache.Stats()
	if st.Bytes > budget {
		t.Fatalf("cache bytes %d exceed budget %d", st.Bytes, budget)
	}
	if st.Entries >= 3 {
		t.Fatalf("no eviction happened: %d entries within budget %d", st.Entries, budget)
	}
	// inputs[0] was least recently used → must have been evicted → miss.
	res, err := Solve(inputs[0], RRB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Cache.Misses != 1 {
		t.Fatalf("evicted diagram did not miss: %+v", res.Stats.Cache)
	}
}

func sumInt64(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

// TestCacheOversizedEntryNotStored checks a diagram larger than the whole
// budget is passed through without caching (and without evicting the world).
func TestCacheOversizedEntryNotStored(t *testing.T) {
	cache := NewDiagramCache(64) // far below any real diagram
	in := cacheInput(5, cache)
	if _, err := Solve(in, RRB); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized diagrams were cached: %+v", st)
	}
}

// TestCacheConcurrent hammers one cache from many goroutines mixing
// repeated, reordered and mutated inputs; run under -race this exercises the
// LRU's locking and the shared-diagram read paths (parallel sweep included).
func TestCacheConcurrent(t *testing.T) {
	cache := NewDiagramCache(0)
	base := cacheInput(13, cache)
	baseRes, err := Solve(base, RRB)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 6; k++ {
				in := cacheInput(13, cache)
				switch (g + k) % 3 {
				case 1: // permuted copy of the same sets → hit
					for ti, set := range in.Sets {
						rev := make([]core.Object, len(set))
						for i, o := range set {
							rev[len(set)-1-i] = o
						}
						in.Sets[ti] = rev
					}
				case 2: // distinct content → its own entries
					in.Sets[0][0].Loc = geom.Pt(float64(g)+1, float64(k)+1)
				}
				in.Workers = 1 + (g+k)%3
				res, err := Solve(in, RRB)
				if err != nil {
					errs <- err
					return
				}
				if (g+k)%3 != 2 && math.Abs(res.Cost-baseRes.Cost) > 1e-9*(1+baseRes.Cost) {
					errs <- errMismatch(res.Cost, baseRes.Cost)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits == 0 || st.Entries == 0 {
		t.Fatalf("concurrent run produced no hits: %+v", st)
	}
}

type errMismatchT struct{ got, want float64 }

func errMismatch(got, want float64) error { return errMismatchT{got, want} }
func (e errMismatchT) Error() string {
	return "cached solve cost mismatch"
}

// TestEngineUsesCache checks NewEngine shares diagram construction with
// Solve through the cache and reports its lookups.
func TestEngineUsesCache(t *testing.T) {
	cache := NewDiagramCache(0)
	in := cacheInput(17, cache)
	if _, err := Solve(in, RRB); err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	cs := eng.CacheStats()
	if cs.Hits != 3 || cs.Misses != 0 {
		t.Fatalf("engine preparation: hits=%d misses=%d, want 3/0", cs.Hits, cs.Misses)
	}
}
