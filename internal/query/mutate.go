package query

import (
	"errors"
	"fmt"
	"time"

	"molq/internal/core"
	"molq/internal/geom"
	"molq/internal/obs"
	"molq/internal/voronoi"
)

// This file implements incremental MOVD maintenance: InsertObject and
// DeleteObject mutate a prepared engine without re-running the full Fig-3
// pipeline. A mutation of one object of type t only moves Voronoi boundaries
// inside the Delaunay link of the mutated site; everything outside that
// region — in the basic diagram AND in the overlapped MOVD — is provably
// unchanged (cavity retriangulation touches only link triangles, and an OVR
// whose type-t cell did not change cannot change either, since the other
// operands of the ⊕ chain are untouched). The repair is therefore:
//
//  1. apply the site insert/delete to the maintained Delaunay triangulation
//     (voronoi.Dynamic: jump-and-walk locate + local retriangulation, or
//     dirty-region hole retriangulation for deletes);
//  2. extract the post-mutation cells of the link — the "patch", a partial
//     basic MOVD of type t — and the IDs whose old cells are now stale;
//  3. splice the patch into the prepared MOVD (core.SpliceOverlap): keep
//     every OVR whose type-t POI is clean, re-sweep only the patch against
//     the other types' basic diagrams restricted to the dirty rectangle.
//
// The result is exact — bit-for-bit the diagram a full rebuild would produce
// up to OVR ordering — at a cost proportional to the dirty region, not the
// dataset. Any condition the incremental path cannot handle (weighted
// diagrams, sites outside the dynamic frame, degenerate hole geometry,
// snapshot-loaded engines with no retained basics) falls back to a full
// rebuild of the new object sets; the engine's answers are identical either
// way, only the repair cost differs.
//
// Concurrency: mutations are serialised by Engine.updMu and publish a fresh
// immutable engineState with a single atomic store. In-flight queries keep
// the snapshot they loaded; they are never blocked and never observe a
// half-applied update.

// Mutation errors. Validation failures leave the engine completely
// untouched; a failed rebuild (reported as any other error) also leaves the
// published state untouched but discards the incremental substrate, so the
// next mutation starts from the published sets.
var (
	// ErrBadType reports a type index outside [0, number of sets).
	ErrBadType = errors.New("query: type index out of range")
	// ErrUnknownObject reports a delete of an ID not present in the type.
	ErrUnknownObject = errors.New("query: no object with this id in the type")
	// ErrDuplicateID reports an insert reusing an ID already live in the type.
	ErrDuplicateID = errors.New("query: object id already present in the type")
	// ErrDuplicateLocation reports an insert at a location already occupied by
	// another object of the same type (its Voronoi cell would be empty and
	// the object invisible to every query).
	ErrDuplicateLocation = errors.New("query: location already occupied by an object of this type")
	// ErrLastObject reports a delete that would empty a type; every type must
	// keep at least one object (Eq 4 sums a nearest neighbour per type).
	ErrLastObject = errors.New("query: cannot delete the last object of a type")
)

var (
	engineUpdatesMetric = obs.Default.CounterVec("molq_engine_updates_total",
		"Successful engine mutations by kind.", "kind")
	engineRepairMetric = obs.Default.CounterVec("molq_engine_update_repairs_total",
		"Repair strategy of successful engine mutations.", "path")
	engineUpdateFailuresMetric = obs.Default.Counter("molq_engine_update_failures_total",
		"Engine mutations rejected by validation or failed during repair.")
)

// UpdateStats reports what one mutation did and what it cost.
type UpdateStats struct {
	// Version is the engine version the mutation published.
	Version int64
	// Rebuilt is true when the mutation repaired by full pipeline rebuild
	// instead of the incremental splice.
	Rebuilt bool

	// DirtyCells is the number of existing cells invalidated by the mutation
	// (the Delaunay link of the mutated site); 0 when Rebuilt.
	DirtyCells int
	// KeptOVRs is the number of OVRs of the previous MOVD carried into the
	// new version unchanged; 0 when Rebuilt.
	KeptOVRs int
	// NewOVRs is the size of the published MOVD.
	NewOVRs int

	VDTime      time.Duration // triangulation repair + patch extraction (or full VD build)
	SpliceTime  time.Duration // dirty-region re-sweep + splice (or full overlap)
	ReindexTime time.Duration // combination re-extraction, flattening, cache maintenance
	TotalTime   time.Duration

	// Overlap counts the sweep work of the repair (restricted to the dirty
	// rectangle on the incremental path).
	Overlap core.OverlapStats

	// Trace is the mutation's span tree when Input.Trace was set.
	Trace *obs.Span `json:"-"`
}

// InsertObject adds one object to the engine's object sets and repairs the
// prepared MOVD, publishing a new engine version. obj.Type selects the set;
// obj.ID must be unused within it and obj.Loc unoccupied. obj.TypeWeight is
// a placeholder (every Query overrides type weights) and defaults to 1 when
// unset. Safe for concurrent use with queries; concurrent mutations are
// serialised.
func (e *Engine) InsertObject(obj core.Object) (UpdateStats, error) {
	ti := obj.Type
	if ti < 0 || ti >= len(e.in.Sets) {
		engineUpdateFailuresMetric.Inc()
		return UpdateStats{}, fmt.Errorf("%w: %d", ErrBadType, ti)
	}
	if obj.ObjWeight <= 0 {
		engineUpdateFailuresMetric.Inc()
		return UpdateStats{}, fmt.Errorf("%w (type %d object %d)", ErrBadWeight, ti, obj.ID)
	}
	if obj.TypeWeight <= 0 {
		obj.TypeWeight = 1
	}

	e.updMu.Lock()
	defer e.updMu.Unlock()
	st := e.state.Load()
	set := st.sets[ti]
	for i := range set {
		if set[i].ID == obj.ID {
			engineUpdateFailuresMetric.Inc()
			return UpdateStats{}, fmt.Errorf("%w: type %d id %d", ErrDuplicateID, ti, obj.ID)
		}
		if set[i].Loc == obj.Loc {
			engineUpdateFailuresMetric.Inc()
			return UpdateStats{}, fmt.Errorf("%w: type %d at %v", ErrDuplicateLocation, ti, obj.Loc)
		}
	}
	uniformAfter := uniformWeights(set) && obj.ObjWeight == set[0].ObjWeight
	if !uniformAfter && e.method == RRB && e.in.WeightedEpsilon < 0 {
		// Exact construction forced: weighted RRB has no realization. With
		// WeightedEpsilon ≥ 0 the non-uniform insert simply falls through to
		// a rebuild on the approximate weighted cell path.
		engineUpdateFailuresMetric.Inc()
		return UpdateStats{}, ErrWeightedRRB
	}

	newSet := make([]core.Object, len(set)+1)
	copy(newSet, set)
	newSet[len(set)] = obj
	newSets := replaceSet(st.sets, ti, newSet)

	var us UpdateStats
	var root *obs.Span
	if e.in.Trace {
		root = obs.StartSpan("engine-update/insert")
		us.Trace = root
	}
	start := time.Now()

	incremental := st.basics != nil && uniformAfter
	if incremental {
		if td := e.ensureDyn(ti, st); td != nil {
			vdStart := time.Now()
			vdSpan := root.Child("locate/retriangulate")
			slot, dirtySlots, err := td.vd.Insert(obj.Loc)
			if err == nil {
				td.setObj(slot, obj)
				dirtyIDs := td.idsOf(dirtySlots, nil)
				patch, perr := td.patch(e.mode, ti, append(dirtySlots, slot))
				us.VDTime = time.Since(vdStart)
				vdSpan.SetAttr("dirty_cells", len(dirtySlots))
				vdSpan.EndWith(us.VDTime)
				if perr == nil {
					if err := e.spliceLocked(st, ti, dirtyIDs, patch, newSets, &us, root); err == nil {
						e.finishUpdate("insert", &us, start, root)
						return us, nil
					}
				}
			} else {
				us.VDTime = time.Since(vdStart)
				vdSpan.SetAttr("error", err.Error())
				vdSpan.EndWith(us.VDTime)
			}
			// The substrate may have diverged from the published state (the
			// site went in but the splice failed, or the triangulation
			// reported corruption); discard it and repair by rebuild.
			e.dyn[ti] = nil
		}
	}

	if err := e.rebuildLocked(ti, newSets, &us, root); err != nil {
		engineUpdateFailuresMetric.Inc()
		root.End()
		return us, err
	}
	e.finishUpdate("insert", &us, start, root)
	return us, nil
}

// DeleteObject removes the object with the given ID from type typeIdx and
// repairs the prepared MOVD, publishing a new engine version. Safe for
// concurrent use with queries; concurrent mutations are serialised.
func (e *Engine) DeleteObject(typeIdx, id int) (UpdateStats, error) {
	if typeIdx < 0 || typeIdx >= len(e.in.Sets) {
		engineUpdateFailuresMetric.Inc()
		return UpdateStats{}, fmt.Errorf("%w: %d", ErrBadType, typeIdx)
	}

	e.updMu.Lock()
	defer e.updMu.Unlock()
	st := e.state.Load()
	set := st.sets[typeIdx]
	at := -1
	for i := range set {
		if set[i].ID == id {
			at = i
			break
		}
	}
	if at < 0 {
		engineUpdateFailuresMetric.Inc()
		return UpdateStats{}, fmt.Errorf("%w: type %d id %d", ErrUnknownObject, typeIdx, id)
	}
	if len(set) == 1 {
		engineUpdateFailuresMetric.Inc()
		return UpdateStats{}, fmt.Errorf("%w: type %d", ErrLastObject, typeIdx)
	}

	newSet := make([]core.Object, 0, len(set)-1)
	newSet = append(newSet, set[:at]...)
	newSet = append(newSet, set[at+1:]...)
	newSets := replaceSet(st.sets, typeIdx, newSet)

	var us UpdateStats
	var root *obs.Span
	if e.in.Trace {
		root = obs.StartSpan("engine-update/delete")
		us.Trace = root
	}
	start := time.Now()

	incremental := st.basics != nil && uniformWeights(set)
	if incremental {
		if td := e.ensureDyn(typeIdx, st); td != nil {
			if slot, ok := td.slotOf[id]; ok {
				vdStart := time.Now()
				vdSpan := root.Child("locate/retriangulate")
				dirtySlots, err := td.vd.Delete(slot)
				if err == nil {
					delete(td.slotOf, id)
					dirtyIDs := td.idsOf(dirtySlots, map[int]bool{id: true})
					patch, perr := td.patch(e.mode, typeIdx, dirtySlots)
					us.VDTime = time.Since(vdStart)
					vdSpan.SetAttr("dirty_cells", len(dirtySlots))
					vdSpan.EndWith(us.VDTime)
					if perr == nil {
						if serr := e.spliceLocked(st, typeIdx, dirtyIDs, patch, newSets, &us, root); serr == nil {
							e.finishUpdate("delete", &us, start, root)
							return us, nil
						}
					}
				} else {
					us.VDTime = time.Since(vdStart)
					vdSpan.SetAttr("error", err.Error())
					vdSpan.EndWith(us.VDTime)
				}
				e.dyn[typeIdx] = nil
			}
		}
	}

	if err := e.rebuildLocked(typeIdx, newSets, &us, root); err != nil {
		engineUpdateFailuresMetric.Inc()
		root.End()
		return us, err
	}
	e.finishUpdate("delete", &us, start, root)
	return us, nil
}

// replaceSet returns a copy of sets with index ti swapped for newSet; every
// other set is shared (immutable by convention).
func replaceSet(sets [][]core.Object, ti int, newSet []core.Object) [][]core.Object {
	out := make([][]core.Object, len(sets))
	copy(out, sets)
	out[ti] = newSet
	return out
}

// ensureDyn returns the maintained Voronoi substrate of type ti, building it
// from the current state on first use. nil means the type cannot be
// maintained incrementally (construction failed — e.g. duplicate locations
// in a snapshot-loaded set) and the caller repairs by rebuild.
func (e *Engine) ensureDyn(ti int, st *engineState) *typeDynamic {
	if e.dyn[ti] != nil {
		return e.dyn[ti]
	}
	set := st.sets[ti]
	sites := make([]geom.Point, len(set))
	for i := range set {
		sites[i] = set[i].Loc
	}
	vd, err := voronoi.NewDynamic(sites, e.in.Bounds)
	if err != nil {
		return nil
	}
	td := &typeDynamic{
		vd:     vd,
		slotOf: make(map[int]int, len(set)),
		objAt:  append([]core.Object(nil), set...),
	}
	// NewDynamic assigns slot i to sites[i], so slots align with set order.
	for i := range set {
		td.slotOf[set[i].ID] = i
	}
	e.dyn[ti] = td
	return td
}

// setObj records the object stored at a (possibly fresh) slot.
func (td *typeDynamic) setObj(slot int, obj core.Object) {
	for len(td.objAt) <= slot {
		td.objAt = append(td.objAt, core.Object{})
	}
	td.objAt[slot] = obj
	td.slotOf[obj.ID] = slot
}

// idsOf maps dirty slots to their object IDs, merging into extra (which may
// be nil).
func (td *typeDynamic) idsOf(slots []int, extra map[int]bool) map[int]bool {
	if extra == nil {
		extra = make(map[int]bool, len(slots))
	}
	for _, s := range slots {
		extra[td.objAt[s].ID] = true
	}
	return extra
}

// patch extracts the post-mutation cells of the given slots as a partial
// basic MOVD of type ti — the splice operand. Dead slots and cells clipped
// empty contribute nothing (matching core.FromVoronoi).
func (td *typeDynamic) patch(mode core.Mode, ti int, slots []int) (*core.MOVD, error) {
	m := &core.MOVD{Types: []int{ti}, Bounds: td.vd.Bounds(), Mode: mode}
	for _, slot := range slots {
		if !td.vd.Alive(slot) {
			continue
		}
		cell, err := td.vd.Cell(slot)
		if err != nil {
			return nil, err
		}
		if cell.IsEmpty() {
			continue
		}
		ovr := core.OVR{MBR: cell.Bounds(), POIs: []core.Object{td.objAt[slot]}}
		if mode == core.RRB {
			ovr.Region = cell
		}
		m.OVRs = append(m.OVRs, ovr)
	}
	return m, nil
}

// spliceLocked performs steps 2–3 of the incremental repair and publishes
// the new version: rebuild the type's basic diagram by patching (shared kept
// OVRs + fresh patch OVRs), splice the overlapped MOVD, re-extract
// combinations, advance cache fingerprints. Called with updMu held.
func (e *Engine) spliceLocked(st *engineState, ti int, dirtyIDs map[int]bool, patch *core.MOVD, newSets [][]core.Object, us *UpdateStats, root *obs.Span) error {
	spliceStart := time.Now()
	spliceSpan := root.Child("resweep/splice")
	others := make([]*core.MOVD, 0, len(st.basics)-1)
	for i, b := range st.basics {
		if i != ti {
			others = append(others, b)
		}
	}
	newMovd, ostats, err := core.SpliceOverlap(st.movd, ti, dirtyIDs, patch, others, nil)
	if err != nil {
		spliceSpan.SetAttr("error", err.Error())
		spliceSpan.End()
		return err
	}
	us.Overlap = ostats
	us.DirtyCells = len(dirtyIDs)
	us.NewOVRs = newMovd.Len()

	// One scan of the previous MOVD counts the survivors and retires each
	// dropped OVR's combination from the maintained multiset; the fresh OVRs
	// (appended after the kept ones by SpliceOverlap) then register theirs.
	// This keeps the combos list correct in O(dirty) map work instead of
	// re-extracting it from every OVR, which would dominate the update.
	e.ensureComboIdx(st)
	combos := append(make([][]core.Object, 0, len(st.combos)+4), st.combos...)
	kept := 0
	for i := range st.movd.OVRs {
		o := &st.movd.OVRs[i]
		clean := true
		for _, p := range o.POIs {
			if p.Type == ti && dirtyIDs[p.ID] {
				clean = false
				break
			}
		}
		if clean {
			kept++
			continue
		}
		k := o.DedupKey()
		if e.comboRef[k]--; e.comboRef[k] <= 0 {
			delete(e.comboRef, k)
			pos := e.comboPos[k]
			delete(e.comboPos, k)
			last := len(combos) - 1
			if pos != last {
				combos[pos] = combos[last]
				e.comboPos[core.CombinationDedupKey(combos[pos])] = pos
			}
			combos = combos[:last]
		}
	}
	for i := kept; i < len(newMovd.OVRs); i++ {
		k := newMovd.OVRs[i].DedupKey()
		if e.comboRef[k]++; e.comboRef[k] == 1 {
			e.comboPos[k] = len(combos)
			combos = append(combos, newMovd.OVRs[i].POIs)
		}
	}
	us.KeptOVRs = kept
	us.SpliceTime = time.Since(spliceStart)
	spliceSpan.SetAttr("kept_ovrs", kept)
	spliceSpan.SetAttr("new_ovrs", us.NewOVRs)
	spliceSpan.EndWith(us.SpliceTime)

	// The type's basic diagram is patched the same way the MOVD was: OVRs of
	// clean cells are shared with the previous version, dirty ones replaced
	// by the patch.
	reindexStart := time.Now()
	reindexSpan := root.Child("reindex")
	oldBasic := st.basics[ti]
	newBasic := &core.MOVD{Types: oldBasic.Types, Bounds: oldBasic.Bounds, Mode: oldBasic.Mode}
	newBasic.OVRs = make([]core.OVR, 0, len(oldBasic.OVRs)+1)
	for i := range oldBasic.OVRs {
		if !dirtyIDs[oldBasic.OVRs[i].POIs[0].ID] {
			newBasic.OVRs = append(newBasic.OVRs, oldBasic.OVRs[i])
		}
	}
	newBasic.OVRs = append(newBasic.OVRs, patch.OVRs...)
	newBasics := make([]*core.MOVD, len(st.basics))
	copy(newBasics, st.basics)
	newBasics[ti] = newBasic

	newFps := e.advanceCache(st, ti, newSets, newBasic, newMovd)
	e.state.Store(&engineState{
		version: st.version + 1,
		sets:    newSets,
		basics:  newBasics,
		fps:     newFps,
		movd:    newMovd,
		combos:  combos,
		flat:    e.in.buildFlat(combos),
	})
	us.Version = st.version + 1
	us.ReindexTime = time.Since(reindexStart)
	reindexSpan.SetAttr("combinations", len(combos))
	reindexSpan.EndWith(us.ReindexTime)
	return nil
}

// ensureComboIdx builds the combination multiset of the current snapshot on
// the first incremental mutation after preparation or a rebuild. Called with
// updMu held.
func (e *Engine) ensureComboIdx(st *engineState) {
	if e.comboRef != nil {
		return
	}
	e.comboRef = make(map[string]int, len(st.movd.OVRs))
	for i := range st.movd.OVRs {
		e.comboRef[st.movd.OVRs[i].DedupKey()]++
	}
	e.comboPos = make(map[string]int, len(st.combos))
	for i, c := range st.combos {
		e.comboPos[core.CombinationDedupKey(c)] = i
	}
}

// advanceCache retires the cache entries of the superseded version and seeds
// the repaired diagrams under the new fingerprints, so a later cold solve or
// engine preparation over the mutated sets hits instead of rebuilding.
// Returns the new per-type fingerprints (nil when no cache is configured).
func (e *Engine) advanceCache(st *engineState, ti int, newSets [][]core.Object, newBasic, newMovd *core.MOVD) []fingerprint {
	cache := e.in.diagramCache()
	if cache == nil || st.fps == nil {
		return nil
	}
	newFps := make([]fingerprint, len(st.fps))
	copy(newFps, st.fps)
	newFps[ti] = fingerprintSet(newSets[ti], ti, e.in.Bounds, e.mode, e.in.kind(ti), e.in.Epsilon, e.in.WeightedEpsilon)
	cache.invalidate(st.fps[ti])
	cache.put(newFps[ti], newBasic)
	if len(newSets) >= 2 {
		cache.invalidate(fingerprintOverlap(st.fps, false))
		cache.put(fingerprintOverlap(newFps, false), newMovd)
	}
	return newFps
}

// rebuildLocked repairs by running the full Fig-3 preparation (Modules 1–2)
// over the new sets and publishing the result. Called with updMu held. On
// failure the published state is untouched. The type's incremental substrate
// is discarded either way: a successful rebuild supersedes it and a failed
// one may have diverged from it.
func (e *Engine) rebuildLocked(ti int, newSets [][]core.Object, us *UpdateStats, root *obs.Span) error {
	e.dyn[ti] = nil
	// The rebuilt MOVD shares nothing with the maintained multiset; the next
	// incremental mutation re-derives it from the published snapshot.
	e.comboRef, e.comboPos = nil, nil
	st := e.state.Load()
	in2 := e.in
	in2.Sets = newSets

	vdStart := time.Now()
	vdSpan := root.Child("rebuild/vd-build")
	basics, fps, _, err := in2.buildBasics(e.method, e.mode, vdSpan)
	us.VDTime = time.Since(vdStart)
	vdSpan.EndWith(us.VDTime)
	if err != nil {
		return err
	}

	ovStart := time.Now()
	ovSpan := root.Child("rebuild/overlap")
	var cs CacheStats
	acc, err := in2.cachedOverlapChain(e.mode, nil, basics, fps, &us.Overlap, &cs, ovSpan)
	us.SpliceTime = time.Since(ovStart)
	ovSpan.EndWith(us.SpliceTime)
	if err != nil {
		return err
	}

	reindexStart := time.Now()
	combos := acc.Groups()
	e.state.Store(&engineState{
		version: st.version + 1,
		sets:    newSets,
		basics:  basics,
		fps:     fps,
		movd:    acc,
		combos:  combos,
		flat:    e.in.buildFlat(combos),
	})
	us.Version = st.version + 1
	us.Rebuilt = true
	us.NewOVRs = acc.Len()
	us.ReindexTime = time.Since(reindexStart)
	return nil
}

// finishUpdate stamps the total duration, closes the trace and bumps the
// update metrics.
func (e *Engine) finishUpdate(kind string, us *UpdateStats, start time.Time, root *obs.Span) {
	us.TotalTime = time.Since(start)
	root.SetAttr("version", us.Version)
	root.SetAttr("rebuilt", us.Rebuilt)
	root.EndWith(us.TotalTime)
	engineUpdatesMetric.With(kind).Inc()
	if us.Rebuilt {
		engineRepairMetric.With("rebuild").Inc()
	} else {
		engineRepairMetric.With("incremental").Inc()
	}
}
