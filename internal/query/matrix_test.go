package query

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"molq/internal/core"
	"molq/internal/geom"
)

// TestCrossValidationMatrix is the heavyweight end-to-end property test: it
// sweeps random instances across every configuration axis of the library —
// object-set shapes, weight function families, uniform vs per-object
// weights, pruning on/off, workers on/off — and asserts every solver path
// agrees on the optimal cost. A disagreement anywhere in the matrix
// localises a bug to the differing axis.
func TestCrossValidationMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix test")
	}
	r := rand.New(rand.NewSource(20260706))
	for trial := 0; trial < 12; trial++ {
		nTypes := 2 + r.Intn(3)
		sets := make([][]core.Object, nTypes)
		kinds := make([]WeightKind, nTypes)
		uniform := true
		for ti := 0; ti < nTypes; ti++ {
			if r.Intn(3) == 0 {
				kinds[ti] = AdditiveObjWeights
			}
			n := 2 + r.Intn(4)
			tw := 0.5 + 5*r.Float64()
			perObject := r.Intn(2) == 0
			if perObject {
				uniform = false
			}
			set := make([]core.Object, n)
			for i := range set {
				ow := 1.0
				if perObject {
					if kinds[ti] == AdditiveObjWeights {
						ow = 100 * r.Float64()
					} else {
						ow = 0.3 + 2*r.Float64()
					}
				}
				set[i] = core.Object{
					ID: i, Type: ti,
					Loc:        geom.Pt(r.Float64()*1000, r.Float64()*1000),
					TypeWeight: tw,
					ObjWeight:  ow,
				}
			}
			sets[ti] = set
		}
		base := Input{Sets: sets, Bounds: testBounds, Epsilon: 1e-7, ObjKinds: kinds}

		type variant struct {
			name string
			in   Input
			m    Method
		}
		variants := []variant{
			{"ssc", base, SSC},
			{"mbrb", base, MBRB},
		}
		{
			in := base
			in.PruneOverlap = true
			variants = append(variants, variant{"mbrb+prune", in, MBRB})
		}
		{
			in := base
			in.Workers = 3
			variants = append(variants, variant{"mbrb+workers", in, MBRB})
		}
		{
			in := base
			in.DisableCostBound = true
			variants = append(variants, variant{"ssc-nobound", in, SSC})
		}
		if uniform {
			variants = append(variants,
				variant{"rrb", base, RRB},
				variant{"rrb+prune", func() Input { in := base; in.PruneOverlap = true; return in }(), RRB},
			)
		}
		var ref float64
		for vi, v := range variants {
			res, err := Solve(v.in, v.m)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, v.name, err)
			}
			if vi == 0 {
				ref = res.Cost
				continue
			}
			if rel := math.Abs(res.Cost-ref) / math.Max(ref, 1e-9); rel > 1e-3 {
				t.Fatalf("trial %d: %s cost %v deviates from ssc %v (rel %g)\nconfig: %s",
					trial, v.name, res.Cost, ref, rel, describe(sets, kinds))
			}
		}
	}
}

func describe(sets [][]core.Object, kinds []WeightKind) string {
	out := ""
	for ti, set := range sets {
		out += fmt.Sprintf("type %d: %d objs kind=%v tw=%.3f; ", ti, len(set), kinds[ti], set[0].TypeWeight)
	}
	return out
}
