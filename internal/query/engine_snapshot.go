package query

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"molq/internal/core"
)

// engineSnapshot is the serialised form of a prepared engine: the input it
// was built from plus the prepared MOVD, so loading skips both Voronoi
// generation and overlapping. Snapshots are same-library artifacts (gob
// encoded); the portable interchange format for diagrams alone is
// internal/store.
type engineSnapshot struct {
	Input  Input
	Method Method
	MOVD   *core.MOVD
}

// Save serialises the prepared engine's current version. The diagram cache
// is process wiring, not engine state: it is stripped from the snapshot, and
// a loaded engine joins whatever cache its new process configures. Only the
// current sets and the overlapped diagram are persisted — not the per-type
// basic diagrams — so the first mutation of a loaded engine repairs by full
// rebuild and re-derives them.
func (e *Engine) Save(w io.Writer) error {
	st := e.state.Load()
	in := e.in
	in.Cache = nil
	in.Sets = st.sets
	return gob.NewEncoder(w).Encode(engineSnapshot{
		Input:  in,
		Method: e.method,
		MOVD:   st.movd,
	})
}

// SaveFile writes the prepared engine to path.
func (e *Engine) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := e.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadEngine restores an engine saved with Save. The prepared diagram is
// validated before use so a corrupted snapshot fails loudly instead of
// producing wrong answers.
func LoadEngine(r io.Reader) (*Engine, error) {
	var snap engineSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("query: engine snapshot: %w", err)
	}
	if snap.MOVD == nil {
		return nil, fmt.Errorf("query: engine snapshot has no diagram")
	}
	if err := snap.MOVD.Validate(); err != nil {
		return nil, fmt.Errorf("query: engine snapshot invalid: %w", err)
	}
	if err := snap.Input.validate(); err != nil {
		return nil, fmt.Errorf("query: engine snapshot invalid: %w", err)
	}
	return NewEngineFromPrepared(snap.Input, snap.Method, snap.MOVD)
}

// NewEngineFromPrepared assembles an engine around an already-prepared MOVD,
// skipping Voronoi generation and overlapping entirely. This is the
// restore path shared by gob snapshots (LoadEngine) and the cluster's
// binary shard snapshots: the diagram is taken as-is and only the flat query
// state is derived from it. Like LoadEngine, the per-type basic diagrams are
// not reconstructed, so the first mutation repairs by full rebuild.
func NewEngineFromPrepared(in Input, method Method, movd *core.MOVD) (*Engine, error) {
	if movd == nil {
		return nil, fmt.Errorf("query: prepared engine has no diagram")
	}
	e := &Engine{
		in:     in,
		method: method,
	}
	e.mode = core.RRB
	if method == MBRB {
		e.mode = core.MBRB
	}
	combos := movd.Groups()
	e.state.Store(&engineState{
		version: 1,
		sets:    in.Sets,
		movd:    movd,
		combos:  combos,
		flat:    in.buildFlat(combos),
	})
	e.dyn = make([]*typeDynamic, len(in.Sets))
	e.initReplicas()
	return e, nil
}

// Prepared returns one consistent view of the engine's current state: the
// prepared diagram, the object sets it covers and the version that
// published them. All three come from the same COW snapshot, so a
// concurrent mutation cannot tear them apart. The cluster tier uses this to
// cut version-stamped shard snapshots; callers must treat the diagram and
// sets as read-only (they are shared with in-flight queries).
func (e *Engine) Prepared() (movd *core.MOVD, sets [][]core.Object, version int64) {
	st := e.state.Load()
	return st.movd, st.sets, st.version
}

// LoadEngineFile restores an engine from path.
func LoadEngineFile(path string) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadEngine(f)
}
