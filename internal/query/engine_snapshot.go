package query

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"molq/internal/core"
)

// engineSnapshot is the serialised form of a prepared engine: the input it
// was built from plus the prepared MOVD, so loading skips both Voronoi
// generation and overlapping. Snapshots are same-library artifacts (gob
// encoded); the portable interchange format for diagrams alone is
// internal/store.
type engineSnapshot struct {
	Input  Input
	Method Method
	MOVD   *core.MOVD
}

// Save serialises the prepared engine's current version. The diagram cache
// is process wiring, not engine state: it is stripped from the snapshot, and
// a loaded engine joins whatever cache its new process configures. Only the
// current sets and the overlapped diagram are persisted — not the per-type
// basic diagrams — so the first mutation of a loaded engine repairs by full
// rebuild and re-derives them.
func (e *Engine) Save(w io.Writer) error {
	st := e.state.Load()
	in := e.in
	in.Cache = nil
	in.Sets = st.sets
	return gob.NewEncoder(w).Encode(engineSnapshot{
		Input:  in,
		Method: e.method,
		MOVD:   st.movd,
	})
}

// SaveFile writes the prepared engine to path.
func (e *Engine) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := e.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadEngine restores an engine saved with Save. The prepared diagram is
// validated before use so a corrupted snapshot fails loudly instead of
// producing wrong answers.
func LoadEngine(r io.Reader) (*Engine, error) {
	var snap engineSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("query: engine snapshot: %w", err)
	}
	if snap.MOVD == nil {
		return nil, fmt.Errorf("query: engine snapshot has no diagram")
	}
	if err := snap.MOVD.Validate(); err != nil {
		return nil, fmt.Errorf("query: engine snapshot invalid: %w", err)
	}
	if err := snap.Input.validate(); err != nil {
		return nil, fmt.Errorf("query: engine snapshot invalid: %w", err)
	}
	e := &Engine{
		in:     snap.Input,
		method: snap.Method,
	}
	e.mode = core.RRB
	if snap.Method == MBRB {
		e.mode = core.MBRB
	}
	combos := snap.MOVD.Groups()
	e.state.Store(&engineState{
		version: 1,
		sets:    snap.Input.Sets,
		movd:    snap.MOVD,
		combos:  combos,
		flat:    snap.Input.buildFlat(combos),
	})
	e.dyn = make([]*typeDynamic, len(snap.Input.Sets))
	e.initReplicas()
	return e, nil
}

// LoadEngineFile restores an engine from path.
func LoadEngineFile(path string) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadEngine(f)
}
