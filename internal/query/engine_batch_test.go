package query

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

// batchVecs returns n deterministic positive weight vectors for an engine
// over `types` object sets.
func batchVecs(r *rand.Rand, n, types int) [][]float64 {
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, types)
		for ti := range v {
			v[ti] = 0.5 + 9.5*r.Float64()
		}
		vecs[i] = v
	}
	return vecs
}

// TestQueryBatchMatchesSequential checks QueryBatch returns exactly what a
// sequence of Query calls would, per vector, at several worker counts.
func TestQueryBatchMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	in := randomInput(r, []int{12, 10, 8}, false)
	vecs := batchVecs(r, 16, len(in.Sets))
	for _, workers := range []int{1, 4} {
		in := in
		in.Workers = workers
		eng, err := NewEngine(in, RRB)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]Result, len(vecs))
		for vi, tw := range vecs {
			res, err := eng.Query(tw)
			if err != nil {
				t.Fatal(err)
			}
			want[vi] = res
		}
		got, err := eng.QueryBatch(vecs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(vecs) {
			t.Fatalf("workers=%d: %d results for %d vectors", workers, len(got), len(vecs))
		}
		for vi := range got {
			if math.Abs(got[vi].Cost-want[vi].Cost) > 1e-9*(1+want[vi].Cost) {
				t.Fatalf("workers=%d vector %d: cost %v, want %v", workers, vi, got[vi].Cost, want[vi].Cost)
			}
			if got[vi].Loc.Dist(want[vi].Loc) > 1e-6 {
				t.Fatalf("workers=%d vector %d: loc %v, want %v", workers, vi, got[vi].Loc, want[vi].Loc)
			}
			if got[vi].Stats.Groups != want[vi].Stats.Groups {
				t.Fatalf("workers=%d vector %d: groups %d, want %d", workers, vi, got[vi].Stats.Groups, want[vi].Stats.Groups)
			}
		}
	}
}

// TestQueryBatchAdditive covers the additive ς^o family: offsets must fold
// per vector, not bleed across vectors.
func TestQueryBatchAdditive(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	in := randomInput(r, []int{9, 7}, false)
	in.ObjKinds = []WeightKind{AdditiveObjWeights, MultiplicativeObjWeights}
	for ti := range in.Sets {
		for i := range in.Sets[ti] {
			in.Sets[ti][i].ObjWeight = 1 + r.Float64()
		}
	}
	eng, err := NewEngine(in, MBRB)
	if err != nil {
		t.Fatal(err)
	}
	vecs := batchVecs(r, 7, len(in.Sets))
	got, err := eng.QueryBatch(vecs)
	if err != nil {
		t.Fatal(err)
	}
	for vi, tw := range vecs {
		want, err := eng.Query(tw)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got[vi].Cost-want.Cost) > 1e-9*(1+want.Cost) {
			t.Fatalf("vector %d: cost %v, want %v", vi, got[vi].Cost, want.Cost)
		}
	}
}

// TestQueryBatchValidation checks empty input and bad vectors.
func TestQueryBatchValidation(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	eng, err := NewEngine(randomInput(r, []int{5, 5}, false), RRB)
	if err != nil {
		t.Fatal(err)
	}
	// An empty batch answers with an empty, non-nil slice: JSON encoders
	// downstream must see [], not null.
	if out, err := eng.QueryBatch(nil); err != nil || out == nil || len(out) != 0 {
		t.Fatalf("empty batch: got (%v, %v), want ([], nil)", out, err)
	}
	if _, err := eng.QueryBatch([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("short vector accepted")
	}
	if _, err := eng.QueryBatch([][]float64{{1, 2}, {1, -3}}); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("negative weight: err=%v, want ErrBadWeight", err)
	}
}

// TestEngineConcurrentQueries is the shared-mutable-state audit as a test:
// one engine hammered by Query and QueryBatch from many goroutines (run
// under -race in CI) must produce exactly the single-threaded answers —
// every call owns its problem slab, and the prepared state is read-only.
func TestEngineConcurrentQueries(t *testing.T) {
	r := rand.New(rand.NewSource(57))
	in := randomInput(r, []int{10, 9, 8}, false)
	in.Workers = runtime.GOMAXPROCS(0)
	eng, err := NewEngine(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	vecs := batchVecs(r, 8, len(in.Sets))
	want := make([]Result, len(vecs))
	for vi, tw := range vecs {
		res, err := eng.Query(tw)
		if err != nil {
			t.Fatal(err)
		}
		want[vi] = res
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				vi := (g + k) % len(vecs)
				if (g+k)%2 == 0 {
					res, err := eng.Query(vecs[vi])
					if err != nil {
						t.Errorf("query: %v", err)
						return
					}
					if math.Abs(res.Cost-want[vi].Cost) > 1e-9*(1+want[vi].Cost) {
						t.Errorf("concurrent query %d: cost %v, want %v", vi, res.Cost, want[vi].Cost)
						return
					}
				} else {
					out, err := eng.QueryBatch(vecs)
					if err != nil {
						t.Errorf("query batch: %v", err)
						return
					}
					for i := range out {
						if math.Abs(out[i].Cost-want[i].Cost) > 1e-9*(1+want[i].Cost) {
							t.Errorf("concurrent batch vector %d: cost %v, want %v", i, out[i].Cost, want[i].Cost)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// BenchmarkEngineQueryBatch compares 16 sequential Query calls against one
// QueryBatch over the same 16 weight vectors — the amortization the serving
// path relies on (acceptance: batch16 beats seq16 on wall clock).
func BenchmarkEngineQueryBatch(b *testing.B) {
	r := rand.New(rand.NewSource(61))
	in := randomInput(r, []int{40, 35, 30}, false)
	in.Workers = runtime.GOMAXPROCS(0)
	eng, err := NewEngine(in, RRB)
	if err != nil {
		b.Fatal(err)
	}
	vecs := batchVecs(r, 16, len(in.Sets))

	b.Run("seq16", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, tw := range vecs {
				if _, err := eng.Query(tw); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch16", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.QueryBatch(vecs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
