package query

import (
	"math"
	"math/rand"
	"testing"

	"molq/internal/core"
	"molq/internal/geom"
)

// additiveMWGD is the ground-truth objective for additive object weights:
// per type, min over objects of w^t·(d + w^o).
func additiveMWGD(q geom.Point, sets [][]core.Object, kinds []WeightKind) float64 {
	total := 0.0
	for ti, set := range sets {
		best := math.Inf(1)
		for _, o := range set {
			var v float64
			if ti < len(kinds) && kinds[ti] == AdditiveObjWeights {
				v = o.TypeWeight * (q.Dist(o.Loc) + o.ObjWeight)
			} else {
				v = o.TypeWeight * o.ObjWeight * q.Dist(o.Loc)
			}
			if v < best {
				best = v
			}
		}
		total += best
	}
	return total
}

func additiveInput(r *rand.Rand, sizes []int) Input {
	sets := make([][]core.Object, len(sizes))
	kinds := make([]WeightKind, len(sizes))
	for ti, n := range sizes {
		kinds[ti] = AdditiveObjWeights
		set := make([]core.Object, n)
		for i := range set {
			set[i] = core.Object{
				ID:         i,
				Type:       ti,
				Loc:        geom.Pt(r.Float64()*1000, r.Float64()*1000),
				TypeWeight: 0.5 + 4*r.Float64(),
				ObjWeight:  50 * r.Float64(), // additive penalty in distance units
			}
		}
		sets[ti] = set
	}
	return Input{Sets: sets, Bounds: testBounds, Epsilon: 1e-6, ObjKinds: kinds}
}

func TestAdditiveSSCMatchesGroundTruth(t *testing.T) {
	r := rand.New(rand.NewSource(606))
	in := additiveInput(r, []int{4, 4})
	res, err := Solve(in, SSC)
	if err != nil {
		t.Fatal(err)
	}
	if got := additiveMWGD(res.Loc, in.Sets, in.ObjKinds); math.Abs(got-res.Cost) > 1e-6*res.Cost {
		t.Fatalf("reported cost %v but additive MWGD(loc) = %v", res.Cost, got)
	}
	// Grid scan: no sampled location may beat the reported optimum
	// (modulo tolerance).
	for trial := 0; trial < 2000; trial++ {
		p := geom.Pt(r.Float64()*1000, r.Float64()*1000)
		if v := additiveMWGD(p, in.Sets, in.ObjKinds); v < res.Cost*(1-1e-3) {
			t.Fatalf("location %v has cost %v < reported optimum %v", p, v, res.Cost)
		}
	}
}

func TestAdditiveMBRBMatchesSSC(t *testing.T) {
	r := rand.New(rand.NewSource(707))
	for trial := 0; trial < 6; trial++ {
		in := additiveInput(r, []int{2 + r.Intn(4), 2 + r.Intn(4), 2 + r.Intn(3)})
		ssc, err := Solve(in, SSC)
		if err != nil {
			t.Fatalf("trial %d SSC: %v", trial, err)
		}
		mbrb, err := Solve(in, MBRB)
		if err != nil {
			t.Fatalf("trial %d MBRB: %v", trial, err)
		}
		if math.Abs(mbrb.Cost-ssc.Cost) > 1e-3*math.Max(1, ssc.Cost) {
			t.Fatalf("trial %d: additive MBRB cost %v vs SSC %v", trial, mbrb.Cost, ssc.Cost)
		}
	}
}

func TestAdditiveUniformWeightsAllMethods(t *testing.T) {
	// Uniform additive weights keep ordinary Voronoi diagrams exact, so
	// even RRB must work and agree.
	r := rand.New(rand.NewSource(808))
	sets := make([][]core.Object, 3)
	kinds := make([]WeightKind, 3)
	for ti := range sets {
		kinds[ti] = AdditiveObjWeights
		n := 3 + r.Intn(4)
		set := make([]core.Object, n)
		for i := range set {
			set[i] = core.Object{
				ID: i, Type: ti,
				Loc:        geom.Pt(r.Float64()*1000, r.Float64()*1000),
				TypeWeight: 1 + float64(ti),
				ObjWeight:  25, // same for the whole type
			}
		}
		sets[ti] = set
	}
	in := Input{Sets: sets, Bounds: testBounds, Epsilon: 1e-6, ObjKinds: kinds}
	var costs []float64
	for _, m := range []Method{SSC, RRB, MBRB} {
		res, err := Solve(in, m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		costs = append(costs, res.Cost)
	}
	for _, c := range costs[1:] {
		if math.Abs(c-costs[0]) > 1e-3*costs[0] {
			t.Fatalf("methods disagree on uniform additive input: %v", costs)
		}
	}
}

func TestMixedKindsAgree(t *testing.T) {
	// One multiplicative type, one additive type in the same query.
	r := rand.New(rand.NewSource(909))
	multSet := make([]core.Object, 4)
	for i := range multSet {
		multSet[i] = core.Object{
			ID: i, Type: 0,
			Loc:        geom.Pt(r.Float64()*1000, r.Float64()*1000),
			TypeWeight: 2, ObjWeight: 0.5 + r.Float64(),
		}
	}
	addSet := make([]core.Object, 4)
	for i := range addSet {
		addSet[i] = core.Object{
			ID: i, Type: 1,
			Loc:        geom.Pt(r.Float64()*1000, r.Float64()*1000),
			TypeWeight: 1, ObjWeight: 100 * r.Float64(),
		}
	}
	in := Input{
		Sets:     [][]core.Object{multSet, addSet},
		Bounds:   testBounds,
		Epsilon:  1e-6,
		ObjKinds: []WeightKind{MultiplicativeObjWeights, AdditiveObjWeights},
	}
	ssc, err := Solve(in, SSC)
	if err != nil {
		t.Fatal(err)
	}
	mbrb, err := Solve(in, MBRB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mbrb.Cost-ssc.Cost) > 1e-3*math.Max(1, ssc.Cost) {
		t.Fatalf("mixed kinds: MBRB %v vs SSC %v", mbrb.Cost, ssc.Cost)
	}
	if got := additiveMWGD(ssc.Loc, in.Sets, in.ObjKinds); math.Abs(got-ssc.Cost) > 1e-6*ssc.Cost {
		t.Fatalf("cost %v but MWGD(loc) %v", ssc.Cost, got)
	}
}

func TestObjKindsValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1010))
	in := randomInput(r, []int{3}, false)
	in.ObjKinds = []WeightKind{MultiplicativeObjWeights, AdditiveObjWeights}
	if _, err := Solve(in, SSC); err == nil {
		t.Fatal("too many ObjKinds should fail validation")
	}
	if MultiplicativeObjWeights.String() != "multiplicative" ||
		AdditiveObjWeights.String() != "additive" ||
		WeightKind(9).String() != "WeightKind(9)" {
		t.Fatal("WeightKind.String wrong")
	}
}
