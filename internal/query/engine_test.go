package query

import (
	"math"
	"math/rand"
	"testing"

	"molq/internal/core"
)

func TestEngineMatchesColdSolve(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	in := randomInput(r, []int{8, 10, 6}, false) // unit type weights as placeholders
	for _, method := range []Method{RRB, MBRB} {
		eng, err := NewEngine(in, method)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		for trial := 0; trial < 5; trial++ {
			weights := []float64{
				0.5 + 9*r.Float64(),
				0.5 + 9*r.Float64(),
				0.5 + 9*r.Float64(),
			}
			got, err := eng.Query(weights)
			if err != nil {
				t.Fatal(err)
			}
			// Cold solve with the weights written onto the objects.
			cold := in
			cold.Sets = make([][]core.Object, len(in.Sets))
			for ti, set := range in.Sets {
				ns := make([]core.Object, len(set))
				copy(ns, set)
				for i := range ns {
					ns[i].TypeWeight = weights[ti]
				}
				cold.Sets[ti] = ns
			}
			want, err := Solve(cold, method)
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(got.Cost-want.Cost) / want.Cost; rel > 1e-6 {
				t.Fatalf("%v trial %d: engine %v vs cold %v", method, trial, got.Cost, want.Cost)
			}
			if mwgd := eng.MWGDAt(got.Loc, weights); math.Abs(mwgd-got.Cost) > 1e-6*got.Cost {
				t.Fatalf("%v: cost %v but MWGDAt %v", method, got.Cost, mwgd)
			}
		}
	}
}

func TestEngineAdditive(t *testing.T) {
	r := rand.New(rand.NewSource(52))
	in := additiveInput(r, []int{5, 5})
	eng, err := NewEngine(in, MBRB)
	if err != nil {
		t.Fatal(err)
	}
	weights := []float64{2, 3}
	got, err := eng.Query(weights)
	if err != nil {
		t.Fatal(err)
	}
	cold := in
	cold.Sets = make([][]core.Object, len(in.Sets))
	for ti, set := range in.Sets {
		ns := make([]core.Object, len(set))
		copy(ns, set)
		for i := range ns {
			ns[i].TypeWeight = weights[ti]
		}
		cold.Sets[ti] = ns
	}
	want, err := Solve(cold, MBRB)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got.Cost-want.Cost) / want.Cost; rel > 1e-6 {
		t.Fatalf("additive engine %v vs cold %v", got.Cost, want.Cost)
	}
}

func TestEngineValidation(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	in := randomInput(r, []int{4, 4}, false)
	if _, err := NewEngine(in, SSC); err == nil {
		t.Fatal("SSC engine should be rejected")
	}
	eng, err := NewEngine(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query([]float64{1}); err == nil {
		t.Fatal("wrong weight count should fail")
	}
	if _, err := eng.Query([]float64{1, 0}); err == nil {
		t.Fatal("non-positive weight should fail")
	}
	if eng.OVRs() == 0 || eng.Combinations() == 0 || eng.PrepTime() <= 0 {
		t.Fatalf("engine stats empty: OVRs=%d combos=%d", eng.OVRs(), eng.Combinations())
	}
}

func TestEngineReuseIsCheaper(t *testing.T) {
	r := rand.New(rand.NewSource(54))
	in := randomInput(r, []int{40, 40, 40}, false)
	eng, err := NewEngine(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// The per-query optimizer time must be well under the preparation time
	// on an instance of this size.
	if res.Stats.OptimizeTime > eng.PrepTime() {
		t.Fatalf("query (%v) not cheaper than prepare (%v)", res.Stats.OptimizeTime, eng.PrepTime())
	}
}
