package query

import (
	"fmt"
	"math"
	"sort"

	"molq/internal/core"
	"molq/internal/fermat"
	"molq/internal/geom"
)

// Candidate is one locally optimal location: the Fermat-Weber optimum of one
// object combination admitted by the MOVD. Its Cost is the weighted group
// distance to that combination at Loc, which upper-bounds (and at the winner
// equals) MWGD(Loc).
type Candidate struct {
	Loc         geom.Point
	Cost        float64
	Combination []core.Object
}

// TopK returns the k best distinct candidate locations of the query,
// ascending by cost. Candidate 0 is the query answer; the rest are the next
// best locally optimal locations — the paper's Optimizer examines exactly
// this candidate list (Fig 7) and returns only its head, but planners often
// want alternatives. Every combination is solved to the ε stopping rule (the
// cost bound cannot prune: runners-up are wanted), so TopK costs roughly one
// DisableCostBound solve. Locations closer than a 1e-9 relative tolerance
// are deduplicated, keeping the cheaper.
func TopK(in Input, method Method, k int) ([]Candidate, error) {
	if k <= 0 {
		return nil, nil
	}
	if method != RRB && method != MBRB {
		return nil, fmt.Errorf("query: TopK requires RRB or MBRB, got %v", method)
	}
	eng, err := NewEngine(in, method)
	if err != nil {
		return nil, err
	}
	return topKFromEngine(eng, &in, k)
}

// topKFromEngine enumerates and ranks the candidates of a prepared engine.
// The returned combinations are copies — callers own them, and mutating them
// must not corrupt the engine's group storage.
func topKFromEngine(eng *Engine, in *Input, k int) ([]Candidate, error) {
	opt := in.options()
	var cands []Candidate
	for _, combo := range eng.state.Load().combos {
		g, off := in.toProblem(combo)
		res, err := fermat.Solve(g, opt)
		if err != nil {
			return nil, err
		}
		cands = append(cands, Candidate{
			Loc:  res.Loc,
			Cost: res.Cost + off,
			// Copied: combo aliases the engine's group storage, and callers
			// own the returned candidates.
			Combination: append([]core.Object(nil), combo...),
		})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].Cost < cands[j].Cost })
	// Deduplicate by location.
	scale := math.Max(in.Bounds.Width(), in.Bounds.Height())
	tol := 1e-9 * math.Max(scale, 1)
	var out []Candidate
	for _, c := range cands {
		dup := false
		for i := range out {
			if out[i].Loc.Dist(c.Loc) <= tol {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		out = append(out, c)
		if len(out) == k {
			break
		}
	}
	return out, nil
}
