package query

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestParallelPipelineMatchesSequential runs the full solve with Workers=1
// and Workers=4 across methods, type counts, pruning and spill, and demands
// the same optimum, the same MOVD size and the same combination count — the
// parallel overlap engine must change scheduling only, never the answer.
func TestParallelPipelineMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	for _, method := range []Method{RRB, MBRB} {
		for types := 2; types <= 5; types++ {
			sizes := make([]int, types)
			for ti := range sizes {
				sizes[ti] = 6 + 2*ti
			}
			base := randomInput(r, sizes, true)
			// This test compares the overlap engine's work counters between
			// two identical solves; the diagram cache would (correctly) skip
			// the second overlap entirely, so it must be off here.
			base.DisableDiagramCache = true
			for _, prune := range []bool{false, true} {
				for _, spill := range []bool{false, true} {
					label := fmt.Sprintf("%v/types=%d/prune=%v/spill=%v", method, types, prune, spill)
					in := base
					in.PruneOverlap = prune
					if spill {
						in.SpillDir = t.TempDir()
					}
					seq, err := Solve(in, method)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					pin := in
					pin.Workers = 4
					par, err := Solve(pin, method)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if rel := math.Abs(par.Cost - seq.Cost); rel > 1e-9*math.Max(1, seq.Cost) {
						t.Fatalf("%s: cost %v vs %v", label, par.Cost, seq.Cost)
					}
					if par.Stats.OVRs != seq.Stats.OVRs {
						t.Fatalf("%s: OVRs %d vs %d", label, par.Stats.OVRs, seq.Stats.OVRs)
					}
					if par.Stats.Groups != seq.Stats.Groups {
						t.Fatalf("%s: groups %d vs %d", label, par.Stats.Groups, seq.Stats.Groups)
					}
					// The shard-independent overlap counters must agree while
					// the reduction shape matches the left fold (≤3 types);
					// longer chains have association-dependent intermediates.
					if types <= 3 {
						po, so := par.Stats.Overlap, seq.Stats.Overlap
						if po.OutputOVRs != so.OutputOVRs || po.PrunedOVRs != so.PrunedOVRs {
							t.Fatalf("%s: overlap stats %+v vs %+v", label, po, so)
						}
					}
				}
			}
		}
	}
}

// TestParallelEngineMatchesSequential covers the prepared-engine path, whose
// NewEngine shares the parallel chain wiring.
func TestParallelEngineMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	in := randomInput(r, []int{8, 9, 7}, false)
	weights := []float64{2, 0.5, 3}
	for _, method := range []Method{RRB, MBRB} {
		seqEng, err := NewEngine(in, method)
		if err != nil {
			t.Fatal(err)
		}
		pin := in
		pin.Workers = 4
		parEng, err := NewEngine(pin, method)
		if err != nil {
			t.Fatal(err)
		}
		if parEng.OVRs() != seqEng.OVRs() || parEng.Combinations() != seqEng.Combinations() {
			t.Fatalf("%v: engine shape %d/%d vs %d/%d", method,
				parEng.OVRs(), parEng.Combinations(), seqEng.OVRs(), seqEng.Combinations())
		}
		seqRes, err := seqEng.Query(weights)
		if err != nil {
			t.Fatal(err)
		}
		parRes, err := parEng.Query(weights)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(parRes.Cost-seqRes.Cost) > 1e-9*math.Max(1, seqRes.Cost) {
			t.Fatalf("%v: cost %v vs %v", method, parRes.Cost, seqRes.Cost)
		}
	}
}

// TestConcurrentParallelSolves hammers parallel solves and a shared engine
// from many goroutines; run under -race this pins the engine's internal
// synchronisation (merge-emitter, stats folding, shared reduction slices).
func TestConcurrentParallelSolves(t *testing.T) {
	r := rand.New(rand.NewSource(79))
	in := randomInput(r, []int{10, 10, 8}, true)
	in.Workers = 4
	want, err := Solve(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := Solve(in, RRB)
			if err != nil {
				errs <- err
				return
			}
			if math.Abs(res.Cost-want.Cost) > 1e-9*math.Max(1, want.Cost) {
				errs <- fmt.Errorf("solve %d: cost %v, want %v", i, res.Cost, want.Cost)
			}
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := []float64{1 + float64(i%3), 1, 2}
			if _, err := eng.Query(w); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
