package query

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"molq/internal/core"
	"molq/internal/geom"
)

var testBounds = geom.NewRect(geom.Pt(0, 0), geom.Pt(1000, 1000))

func randomInput(r *rand.Rand, sizes []int, randomTypeWeights bool) Input {
	sets := make([][]core.Object, len(sizes))
	for ti, n := range sizes {
		tw := 1.0
		if randomTypeWeights {
			tw = 0.5 + 9.5*r.Float64() // type weights in (0, 10] as in Sec 6.1
		}
		set := make([]core.Object, n)
		for i := range set {
			set[i] = core.Object{
				ID:         i,
				Type:       ti,
				Loc:        geom.Pt(r.Float64()*1000, r.Float64()*1000),
				TypeWeight: tw,
				ObjWeight:  1,
			}
		}
		sets[ti] = set
	}
	return Input{Sets: sets, Bounds: testBounds, Epsilon: 1e-6}
}

func TestValidation(t *testing.T) {
	if _, err := Solve(Input{}, SSC); !errors.Is(err, ErrNoSets) {
		t.Fatalf("want ErrNoSets, got %v", err)
	}
	in := Input{Sets: [][]core.Object{{}}, Bounds: testBounds}
	if _, err := Solve(in, SSC); !errors.Is(err, ErrEmptySet) {
		t.Fatalf("want ErrEmptySet, got %v", err)
	}
	in = Input{
		Sets:   [][]core.Object{{{ID: 0, Type: 0, TypeWeight: 0, ObjWeight: 1}}},
		Bounds: testBounds,
	}
	if _, err := Solve(in, SSC); !errors.Is(err, ErrBadWeight) {
		t.Fatalf("want ErrBadWeight, got %v", err)
	}
	in = randomInput(rand.New(rand.NewSource(1)), []int{3}, false)
	if _, err := Solve(in, Method(99)); !errors.Is(err, ErrUnknownMethod) {
		t.Fatalf("want ErrUnknownMethod, got %v", err)
	}
}

// TestMethodsAgree is the end-to-end theorem of Sec 5.3: SSC, RRB and MBRB
// must return locations of (near) identical MWGD cost.
func TestMethodsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 8; trial++ {
		sizes := []int{2 + r.Intn(5), 2 + r.Intn(5), 2 + r.Intn(5)}
		in := randomInput(r, sizes, true)
		ssc, err := Solve(in, SSC)
		if err != nil {
			t.Fatalf("trial %d SSC: %v", trial, err)
		}
		rrb, err := Solve(in, RRB)
		if err != nil {
			t.Fatalf("trial %d RRB: %v", trial, err)
		}
		mbrb, err := Solve(in, MBRB)
		if err != nil {
			t.Fatalf("trial %d MBRB: %v", trial, err)
		}
		tol := 1e-3 * math.Max(1, ssc.Cost)
		if math.Abs(rrb.Cost-ssc.Cost) > tol {
			t.Fatalf("trial %d sizes %v: RRB cost %v vs SSC %v", trial, sizes, rrb.Cost, ssc.Cost)
		}
		if math.Abs(mbrb.Cost-ssc.Cost) > tol {
			t.Fatalf("trial %d sizes %v: MBRB cost %v vs SSC %v", trial, sizes, mbrb.Cost, ssc.Cost)
		}
		// The reported cost must equal the MWGD of the reported location
		// (multiplicative folding of w^t · w^o, matching core.MWGD with
		// default weight functions).
		for _, res := range []Result{ssc, rrb, mbrb} {
			mwgd := weightedMWGD(res.Loc, in.Sets)
			if diff := math.Abs(mwgd - core.MWGD(res.Loc, in.Sets, core.Weights{})); diff > 1e-9 {
				t.Fatalf("MWGD helpers disagree by %v", diff)
			}
			if math.Abs(mwgd-res.Cost) > tol {
				t.Fatalf("trial %d %s: reported cost %v but MWGD(loc) = %v",
					trial, res.Method, res.Cost, mwgd)
			}
		}
	}
}

// weightedMWGD evaluates MWGD with the multiplicative folding the optimizer
// uses (w^t · w^o · d).
func weightedMWGD(q geom.Point, sets [][]core.Object) float64 {
	total := 0.0
	for _, set := range sets {
		best := math.Inf(1)
		for _, o := range set {
			if v := o.TypeWeight * o.ObjWeight * q.Dist(o.Loc); v < best {
				best = v
			}
		}
		total += best
	}
	return total
}

func TestTwoTypeQuery(t *testing.T) {
	// Two types, one object each: the optimum sits at the heavier object.
	in := Input{
		Sets: [][]core.Object{
			{{ID: 0, Type: 0, Loc: geom.Pt(100, 100), TypeWeight: 5, ObjWeight: 1}},
			{{ID: 0, Type: 1, Loc: geom.Pt(900, 900), TypeWeight: 1, ObjWeight: 1}},
		},
		Bounds: testBounds,
	}
	for _, m := range []Method{SSC, RRB, MBRB} {
		res, err := Solve(in, m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.Loc.Dist(geom.Pt(100, 100)) > 1e-9 {
			t.Fatalf("%s: optimum %v, want (100,100)", m, res.Loc)
		}
	}
}

func TestSingleTypeQuery(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	in := randomInput(r, []int{6}, false)
	for _, m := range []Method{SSC, RRB, MBRB} {
		res, err := Solve(in, m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.Cost > 1e-9 {
			t.Fatalf("%s: single-type optimum should have zero cost, got %v", m, res.Cost)
		}
	}
}

func TestFourTypesAgree(t *testing.T) {
	r := rand.New(rand.NewSource(202))
	in := randomInput(r, []int{3, 3, 3, 3}, true)
	in.Epsilon = 1e-3 // the paper's four-type setting (approximate results)
	ssc, err := Solve(in, SSC)
	if err != nil {
		t.Fatal(err)
	}
	rrb, err := Solve(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	mbrb, err := Solve(in, MBRB)
	if err != nil {
		t.Fatal(err)
	}
	tol := 5e-3 * ssc.Cost
	if math.Abs(rrb.Cost-ssc.Cost) > tol || math.Abs(mbrb.Cost-ssc.Cost) > tol {
		t.Fatalf("costs disagree: SSC %v RRB %v MBRB %v", ssc.Cost, rrb.Cost, mbrb.Cost)
	}
}

// TestRRBRejectsWeightedObjectsWhenExactForced: WeightedEpsilon < 0 pins the
// exact construction, which has no polygonal RRB realization — only then is
// a weighted RRB solve rejected. The default (auto) mode answers via the
// approximate weighted cell path instead.
func TestRRBRejectsWeightedObjectsWhenExactForced(t *testing.T) {
	in := Input{
		Sets: [][]core.Object{
			{
				{ID: 0, Type: 0, Loc: geom.Pt(100, 100), TypeWeight: 1, ObjWeight: 1},
				{ID: 1, Type: 0, Loc: geom.Pt(200, 200), TypeWeight: 1, ObjWeight: 2},
			},
		},
		Bounds:          testBounds,
		WeightedEpsilon: -1,
	}
	if _, err := Solve(in, RRB); !errors.Is(err, ErrWeightedRRB) {
		t.Fatalf("want ErrWeightedRRB, got %v", err)
	}
	in.WeightedEpsilon = 0
	if _, err := Solve(in, RRB); err != nil {
		t.Fatalf("auto weighted RRB should solve, got %v", err)
	}
}

// TestWeightedObjectsViaRRBMatchesSSC: the approximate weighted RRB path —
// refined cells clipped into rectangular OVR regions — must find the SSC
// optimum: conservativeness guarantees the optimal combination survives the
// overlap, and no false-positive combination can cost less than the optimum.
func TestWeightedObjectsViaRRBMatchesSSC(t *testing.T) {
	r := rand.New(rand.NewSource(919))
	for trial := 0; trial < 5; trial++ {
		sets := make([][]core.Object, 2)
		for ti := range sets {
			n := 3 + r.Intn(3)
			set := make([]core.Object, n)
			for i := range set {
				set[i] = core.Object{
					ID:         i,
					Type:       ti,
					Loc:        geom.Pt(r.Float64()*1000, r.Float64()*1000),
					TypeWeight: 1 + 4*r.Float64(),
					ObjWeight:  0.5 + 2*r.Float64(),
				}
			}
			sets[ti] = set
		}
		in := Input{Sets: sets, Bounds: testBounds, Epsilon: 1e-6}
		ssc, err := Solve(in, SSC)
		if err != nil {
			t.Fatal(err)
		}
		for _, weps := range []float64{0, 0.05, 0.3} {
			in.WeightedEpsilon = weps
			rrb, err := Solve(in, RRB)
			if err != nil {
				t.Fatalf("trial %d weps=%g: %v", trial, weps, err)
			}
			if math.Abs(rrb.Cost-ssc.Cost) > 1e-3*math.Max(1, ssc.Cost) {
				t.Fatalf("trial %d weps=%g: weighted RRB cost %v vs SSC %v", trial, weps, rrb.Cost, ssc.Cost)
			}
		}
	}
}

func TestWeightedObjectsViaMBRBMatchesSSC(t *testing.T) {
	r := rand.New(rand.NewSource(303))
	for trial := 0; trial < 5; trial++ {
		sets := make([][]core.Object, 2)
		for ti := range sets {
			n := 3 + r.Intn(3)
			set := make([]core.Object, n)
			for i := range set {
				set[i] = core.Object{
					ID:         i,
					Type:       ti,
					Loc:        geom.Pt(r.Float64()*1000, r.Float64()*1000),
					TypeWeight: 1 + 4*r.Float64(),
					ObjWeight:  0.5 + 2*r.Float64(),
				}
			}
			sets[ti] = set
		}
		in := Input{Sets: sets, Bounds: testBounds, Epsilon: 1e-6}
		ssc, err := Solve(in, SSC)
		if err != nil {
			t.Fatal(err)
		}
		mbrb, err := Solve(in, MBRB)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mbrb.Cost-ssc.Cost) > 1e-3*math.Max(1, ssc.Cost) {
			t.Fatalf("trial %d: weighted MBRB cost %v vs SSC %v", trial, mbrb.Cost, ssc.Cost)
		}
	}
}

func TestCostBoundReducesWork(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	in := randomInput(r, []int{6, 6, 6}, true)
	withCB, err := Solve(in, SSC)
	if err != nil {
		t.Fatal(err)
	}
	in.DisableCostBound = true
	without, err := Solve(in, SSC)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(withCB.Cost-without.Cost) > 1e-3*without.Cost {
		t.Fatalf("cost bound changed the answer: %v vs %v", withCB.Cost, without.Cost)
	}
	workWith := withCB.Stats.Fermat.TotalIters
	workWithout := without.Stats.Fermat.TotalIters
	if workWith >= workWithout {
		t.Fatalf("cost bound did not reduce iterations: %d vs %d", workWith, workWithout)
	}
}

func TestStatsPopulated(t *testing.T) {
	r := rand.New(rand.NewSource(505))
	in := randomInput(r, []int{5, 5, 5}, false)
	res, err := Solve(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.OVRs == 0 || st.Groups == 0 || st.PointsManaged == 0 {
		t.Fatalf("missing stats: %+v", st)
	}
	if st.OVRs < 5 {
		t.Fatalf("three 5-object diagrams should yield ≥5 OVRs, got %d", st.OVRs)
	}
	if st.Overlap.OutputOVRs == 0 || st.Overlap.Events == 0 {
		t.Fatalf("overlap stats not accumulated: %+v", st.Overlap)
	}
}
