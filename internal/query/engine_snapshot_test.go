package query

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestEngineSnapshotRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	in := randomInput(r, []int{8, 6, 7}, false)
	eng, err := NewEngine(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.OVRs() != eng.OVRs() || loaded.Combinations() != eng.Combinations() {
		t.Fatalf("loaded engine differs: %d/%d vs %d/%d",
			loaded.OVRs(), loaded.Combinations(), eng.OVRs(), eng.Combinations())
	}
	weights := []float64{2, 1, 3}
	a, err := eng.Query(weights)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Query(weights)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Cost-b.Cost) > 1e-12*a.Cost {
		t.Fatalf("loaded engine answers differently: %v vs %v", b.Cost, a.Cost)
	}
}

func TestEngineSnapshotFile(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	in := additiveInput(r, []int{4, 4})
	eng, err := NewEngine(in, MBRB)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "engine.gob")
	if err := eng.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEngineFile(path)
	if err != nil {
		t.Fatal(err)
	}
	a, err := eng.Query([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Query([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Cost-b.Cost) > 1e-12 {
		t.Fatalf("additive snapshot mismatch: %v vs %v", b.Cost, a.Cost)
	}
}

func TestLoadEngineRejectsGarbage(t *testing.T) {
	if _, err := LoadEngine(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
