// Package query evaluates Multi-criteria Optimal Location Queries (MOLQ,
// Eq 4). It provides the three solutions the paper compares:
//
//   - SSC — Sequential Scan Combinations (Algorithm 1), the baseline that
//     enumerates every object combination with a two-point upper-bound
//     filter;
//   - RRB — the MOVD-based solution of Fig 3 with real region boundaries;
//   - MBRB — the MOVD-based solution with minimum-bounding-rectangle
//     boundaries.
//
// The optimizer stage follows Sec 5.4: it specialises to the
// multiplicatively-based weight functions (the paper's default), folding
// w^t·w^o into a single Fermat-Weber weight per object, and uses the
// cost-bound batch solver (Algorithm 5) unless disabled.
package query

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"molq/internal/core"
	"molq/internal/fermat"
	"molq/internal/geom"
	"molq/internal/mwvd"
	"molq/internal/obs"
	"molq/internal/voronoi"
	"molq/internal/weighted"
)

// Method selects a MOLQ solution strategy.
type Method int

const (
	// SSC is the Sequential Scan Combinations baseline (Algorithm 1).
	SSC Method = iota
	// RRB is the MOVD solution with Real Region as Boundary (Sec 5.2).
	RRB
	// MBRB is the MOVD solution with MBR as Boundary (Sec 5.3).
	MBRB
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case SSC:
		return "SSC"
	case RRB:
		return "RRB"
	case MBRB:
		return "MBRB"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// WeightKind selects the object weight function ς^o of a type (Sec 2.1).
// The type weight function ς^t is always multiplicative, the paper's
// optimizer setting (Sec 5.4).
type WeightKind int

const (
	// MultiplicativeObjWeights is ς^o(d, w) = d·w (the default).
	MultiplicativeObjWeights WeightKind = iota
	// AdditiveObjWeights is ς^o(d, w) = d + w (the additively weighted
	// Voronoi variant of Fig 5).
	AdditiveObjWeights
)

// String implements fmt.Stringer.
func (k WeightKind) String() string {
	switch k {
	case MultiplicativeObjWeights:
		return "multiplicative"
	case AdditiveObjWeights:
		return "additive"
	default:
		return fmt.Sprintf("WeightKind(%d)", int(k))
	}
}

// Input describes one MOLQ instance.
type Input struct {
	// Sets is 𝔼 = {P_1, …, P_n}: one slice of objects per type. Object.Type
	// must equal the set's index.
	Sets [][]core.Object
	// Bounds is the search space ℝ.
	Bounds geom.Rect
	// Epsilon is the ε stopping bound for iterative Fermat-Weber solves
	// (default fermat.DefaultEpsilon).
	Epsilon float64
	// WeightedEpsilon selects how weighted (non-uniform object weight) basic
	// diagrams are realized:
	//   - 0 (default): automatic — under MBRB, sets with at least
	//     weightedApproxMinSites objects use the near-linear approximate MWVD
	//     refinement (internal/mwvd) at mwvd.AutoEpsilon (DefaultEpsilon up
	//     to 50k sites per core, loosening as √n past it), smaller sets keep
	//     the exact O(n²) Apollonius pair construction; under RRB every
	//     weighted set uses the approximate cell construction at
	//     mwvd.AutoEpsilon (there is no exact polygonal realization of
	//     curved weighted boundaries);
	//   - > 0: always use the approximate construction with this relative
	//     error bound ε (candidate regions may admit sites up to (1+ε) from
	//     optimal — still conservative, never false-negative);
	//   - < 0: always use the exact pair construction. MBRB only: weighted
	//     RRB then fails with ErrWeightedRRB.
	// Under RRB the approximate construction serves refined leaf cells
	// clipped into rectangular regions (mwvd.Diagram.EachLeaf →
	// core.FromCellRegions) instead of per-site boxes. Uniform-weight types
	// are unaffected (they use exact Voronoi diagrams).
	WeightedEpsilon float64
	// DisableCostBound switches the optimizer to the "Original" sequential
	// Fermat-Weber batch (used by the Fig 10 baseline); by default the
	// Algorithm 5 cost-bound optimizer runs.
	DisableCostBound bool
	// ObjKinds gives the object weight function per type; nil or short means
	// multiplicative for the missing entries.
	ObjKinds []WeightKind
	// Workers > 1 parallelises all three Fig-3 modules: the VD Generator
	// (one goroutine per type), the MOVD Overlapper (sharded plane sweep
	// plus a balanced parallel reduction of the ⊕ chain), and the
	// cost-bound Optimizer (shared atomic bound). 0 or 1 runs sequentially;
	// sequential evaluation is fully deterministic, parallel evaluation
	// returns the same optimum with nondeterministic statistics.
	Workers int
	// PruneOverlap enables the Sec-8 future-work optimisation: combinations
	// whose best possible cost (a box lower bound) exceeds a sampled upper
	// bound of the optimum are dropped during the MOVD overlap itself, before
	// they fan out into later overlaps or reach the optimizer. The result is
	// unchanged; only work is saved.
	PruneOverlap bool
	// Acceleration is the Weiszfeld over-relaxation factor (see
	// fermat.Options.Acceleration); 0 keeps the paper's plain iteration.
	Acceleration float64
	// SpillDir, when non-empty, runs the final ⊕ out of core: its OVRs are
	// streamed to a temporary snapshot in this directory (removed after the
	// solve) and the optimizer streams them back, so the final — largest —
	// MOVD never resides in memory (the Sec-8 disk-based technique).
	// Applies to RRB/MBRB with two or more object types.
	SpillDir string
	// Cache overrides the diagram cache memoizing per-type basic MOVDs
	// across solves; nil uses the process-wide DefaultDiagramCache. See
	// cache.go for the fingerprinting rules.
	Cache *DiagramCache
	// DisableDiagramCache rebuilds every basic diagram from scratch,
	// bypassing the cache entirely (used by construction benchmarks and
	// callers that mutate object sets in place between solves).
	DisableDiagramCache bool
	// Replicas is the number of per-core read replicas an Engine keeps of its
	// flat query state (see engReplica): concurrent Query/QueryBatch calls
	// each claim a private replica, so readers on different cores never
	// stream the same cache-hot arrays. 0 (the default) disables replication
	// — queries read the shared snapshot, which is always correct. Only
	// engines use this; one-shot Solve calls ignore it.
	Replicas int
	// Trace records a span tree over the solve — one span per Fig-3 module,
	// one per pairwise ⊕ (with per-strip children under the parallel
	// engine), one per Fermat-Weber batch — exported on Result.Stats.Trace.
	// The phase span durations are set from the same measurements as the
	// Stats phase durations, so the two always agree. Off (the default),
	// the pipeline carries no tracing overhead beyond nil checks.
	Trace bool
}

// kind returns the object weight function family of type ti.
func (in *Input) kind(ti int) WeightKind {
	if ti < len(in.ObjKinds) {
		return in.ObjKinds[ti]
	}
	return MultiplicativeObjWeights
}

// Stats reports the work done by a solve, phase by phase (Fig 3 modules).
type Stats struct {
	VDTime       time.Duration // VD Generator
	OverlapTime  time.Duration // MOVD Overlapper
	OptimizeTime time.Duration // Optimizer
	TotalTime    time.Duration
	// BatchElapsed is the wall clock of the whole Engine.QueryBatch call this
	// result came from (zero outside batched queries). Batched vectors are
	// solved together over one worker pool, so per-item phase times report
	// each item's amortized share of BatchElapsed, not its own wall clock.
	BatchElapsed time.Duration

	OVRs          int // |MOVD| after the final overlap (0 for SSC)
	Groups        int // Fermat-Weber problems examined
	PointsManaged int // boundary points held by the final MOVD
	Combinations  int // combinations enumerated (SSC only)

	// ReplicaClaimed reports whether an engine query ran on a private
	// per-core read replica (false: it fell back to the shared snapshot,
	// either because replication is off or every slot was busy — a
	// tail-latency signal the slow-query log records).
	ReplicaClaimed bool

	Overlap core.OverlapStats // accumulated across sequential overlaps
	Fermat  fermat.BatchStats
	Cache   CacheStats // diagram-cache lookups of this solve's VD stage

	// Trace is the solve's span tree when Input.Trace was set (nil
	// otherwise). Phase span durations equal the phase durations above.
	Trace *obs.Span `json:"-"`
}

// Result is the answer to a MOLQ.
type Result struct {
	Loc    geom.Point
	Cost   float64 // WGD of the winning combination at Loc (= MWGD(Loc))
	Method Method
	Stats  Stats
}

// Validation errors.
var (
	ErrNoSets        = errors.New("query: no object sets")
	ErrEmptySet      = errors.New("query: empty object set")
	ErrBadWeight     = errors.New("query: object weights must be positive")
	ErrWeightedRRB   = errors.New("query: exact RRB requires uniform object weights per type (weighted Voronoi boundaries are curves; leave WeightedEpsilon ≥ 0 for approximate weighted RRB cells, or use MBRB/SSC)")
	ErrUnknownMethod = errors.New("query: unknown method")
)

func (in *Input) validate() error {
	if len(in.Sets) == 0 {
		return ErrNoSets
	}
	if in.Bounds.IsEmpty() {
		return fmt.Errorf("query: empty search space %v", in.Bounds)
	}
	if len(in.ObjKinds) > len(in.Sets) {
		return fmt.Errorf("query: %d ObjKinds for %d sets", len(in.ObjKinds), len(in.Sets))
	}
	for ti, set := range in.Sets {
		if len(set) == 0 {
			return fmt.Errorf("%w (type %d)", ErrEmptySet, ti)
		}
		for _, o := range set {
			if o.TypeWeight <= 0 || o.ObjWeight <= 0 {
				return fmt.Errorf("%w (type %d object %d)", ErrBadWeight, ti, o.ID)
			}
			if o.Type != ti {
				return fmt.Errorf("query: object %d in set %d has Type=%d", o.ID, ti, o.Type)
			}
		}
	}
	return nil
}

func (in *Input) options() fermat.Options {
	return fermat.Options{Epsilon: in.Epsilon, Acceleration: in.Acceleration}
}

// toProblem folds a combination into a Fermat-Weber problem. With the
// multiplicative ς^o, WD = (w^t·w^o)·d — a pure weight. With the additive
// ς^o, WD = w^t·(d + w^o) = w^t·d + w^t·w^o — weight w^t plus a constant
// that accumulates into the group's offset.
func (in *Input) toProblem(objs []core.Object) (fermat.Group, float64) {
	g := make(fermat.Group, len(objs))
	offset := 0.0
	for i, o := range objs {
		switch in.kind(o.Type) {
		case AdditiveObjWeights:
			g[i] = fermat.WeightedPoint{P: o.Loc, W: o.TypeWeight}
			offset += o.TypeWeight * o.ObjWeight
		default:
			g[i] = fermat.WeightedPoint{P: o.Loc, W: o.TypeWeight * o.ObjWeight}
		}
	}
	return g, offset
}

// Solve evaluates the query with the chosen method.
func Solve(in Input, method Method) (Result, error) {
	return SolveContext(context.Background(), in, method)
}

// SolveContext is Solve honouring a context: cancellation propagates into
// the optimizer's scan (and its worker pool when Workers > 1), which stops
// within one group's solve time and returns the context's error. The
// construction modules run to completion — cancellation is checked between
// pipeline phases and throughout the optimizer, where solves spend their
// time at scale.
func SolveContext(ctx context.Context, in Input, method Method) (Result, error) {
	if err := in.validate(); err != nil {
		return Result{}, err
	}
	switch method {
	case SSC:
		return solveSSC(ctx, in)
	case RRB, MBRB:
		return solveMOVD(ctx, in, method)
	default:
		return Result{}, fmt.Errorf("%w: %d", ErrUnknownMethod, int(method))
	}
}

// uniformWeights reports whether every object of the set carries the same
// object weight (an ordinary Voronoi diagram then suffices).
func uniformWeights(set []core.Object) bool {
	for _, o := range set[1:] {
		if o.ObjWeight != set[0].ObjWeight {
			return false
		}
	}
	return true
}

// vdBuildHook, when non-nil, is called once per actual basic-diagram
// construction (cache hits and coalesced waits skip it). Tests install it to
// count builds and prove coalescing semantics; production leaves it nil.
var vdBuildHook func()

// constructBasic runs the actual Voronoi/dominance construction for one
// object set — the work the diagram cache memoizes and coalesces. span (may
// be nil) receives the weighted prepare-phase children so slow weighted
// builds break down in the flight recorder.
func (in *Input) constructBasic(set []core.Object, ti int, method Method, mode core.Mode, span *obs.Span) (*core.MOVD, error) {
	if vdBuildHook != nil {
		vdBuildHook()
	}
	if uniformWeights(set) {
		// A uniform object weight preserves the nearest-site order for
		// both ς^o families, so the ordinary Voronoi diagram is exact.
		return ordinaryBasic(set, ti, in.Bounds, mode)
	}
	if method == RRB {
		if in.WeightedEpsilon < 0 {
			// The caller forced the exact construction, which has no
			// polygonal RRB realization.
			return nil, ErrWeightedRRB
		}
		return in.weightedCellBasic(set, ti, span)
	}
	return in.weightedBasic(set, ti, span)
}

// buildBasics runs Module 1 of Fig 3 (the VD Generator) for every object
// set, at most Workers goroutines at a time when Workers > 1 (Workers is the
// solve's global parallelism budget, so the fan-out is clamped rather than
// one goroutine per type). Each basic diagram is looked up in the configured
// diagram cache first; a cached diagram is shared with every other solve
// that hit the same fingerprint and must not be mutated (the pipeline only
// reads basic MOVDs). Concurrent misses on one fingerprint — N identical
// cold solves racing — coalesce onto a single construction through
// DiagramCache.getOrBuild. The returned fingerprints (nil when no cache is
// configured) key the overlap-level cache; the CacheStats counts this call's
// hits, misses and coalesced waits and snapshots the cache state.
func (in *Input) buildBasics(method Method, mode core.Mode, span *obs.Span) ([]*core.MOVD, []fingerprint, CacheStats, error) {
	basics := make([]*core.MOVD, len(in.Sets))
	cache := in.diagramCache()
	outcomes := make([]lookupOutcome, len(in.Sets))
	var fps []fingerprint
	if cache != nil {
		fps = make([]fingerprint, len(in.Sets))
	}
	buildOne := func(ti int) error {
		var sp *obs.Span
		if span != nil {
			sp = span.Child(fmt.Sprintf("vd type %d", ti))
			defer sp.End()
		}
		set := in.Sets[ti]
		if cache == nil {
			m, err := in.constructBasic(set, ti, method, mode, sp)
			if err != nil {
				return err
			}
			basics[ti] = m
			sp.SetAttr("ovrs", m.Len())
			return nil
		}
		fp := fingerprintSet(set, ti, in.Bounds, mode, in.kind(ti), in.Epsilon, in.WeightedEpsilon)
		fps[ti] = fp
		m, outcome, err := cache.getOrBuild(fp, func() (*core.MOVD, error) {
			return in.constructBasic(set, ti, method, mode, sp)
		})
		if err != nil {
			return err
		}
		outcomes[ti] = outcome
		basics[ti] = m
		switch outcome {
		case lookupHit:
			sp.SetAttr("cache", "hit")
		case lookupCoalesced:
			sp.SetAttr("cache", "coalesced")
		default:
			sp.SetAttr("cache", "miss")
		}
		sp.SetAttr("ovrs", m.Len())
		return nil
	}
	var cs CacheStats
	finish := func() CacheStats {
		if cache == nil {
			return cs
		}
		for _, o := range outcomes {
			switch o {
			case lookupHit:
				cs.Hits++
			case lookupCoalesced:
				cs.Coalesced++
			default:
				cs.Misses++
			}
		}
		snap := cache.Stats()
		cs.Entries, cs.Bytes, cs.Capacity = snap.Entries, snap.Bytes, snap.Capacity
		return cs
	}
	if in.Workers > 1 && len(in.Sets) > 1 {
		var wg sync.WaitGroup
		errs := make([]error, len(in.Sets))
		sem := make(chan struct{}, in.Workers)
		for ti := range in.Sets {
			wg.Add(1)
			sem <- struct{}{}
			go func(ti int) {
				defer wg.Done()
				defer func() { <-sem }()
				errs[ti] = buildOne(ti)
			}(ti)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, nil, cs, err
			}
		}
	} else {
		for ti := range in.Sets {
			if err := buildOne(ti); err != nil {
				return nil, nil, cs, err
			}
		}
	}
	return basics, fps, finish(), nil
}

// cachedOverlapChain wraps overlapChain with the level-two cache: the final
// overlapped diagram is memoized under the ordered basic fingerprints, so a
// repeat solve (or engine preparation) over unchanged data skips Module 2
// entirely. Single-set inputs are not cached at this level — the "chain" is
// the basic diagram itself, already a level-one entry. Concurrent misses on
// one overlap fingerprint coalesce onto a single ⊕ chain the same way basic
// builds do. The lookup is counted into cs alongside the basic-diagram hits
// and misses.
func (in *Input) cachedOverlapChain(mode core.Mode, prune core.PruneFunc, movds []*core.MOVD, fps []fingerprint, stats *core.OverlapStats, cs *CacheStats, span *obs.Span) (*core.MOVD, error) {
	cache := in.diagramCache()
	if cache == nil || fps == nil || len(movds) < 2 || len(movds) != len(in.Sets) {
		return in.overlapChain(mode, prune, movds, stats, span)
	}
	key := fingerprintOverlap(fps, prune != nil)
	m, outcome, err := cache.getOrBuild(key, func() (*core.MOVD, error) {
		return in.overlapChain(mode, prune, movds, stats, span)
	})
	if err != nil {
		return nil, err
	}
	switch outcome {
	case lookupHit:
		cs.Hits++
		span.SetAttr("cache", "hit")
	case lookupCoalesced:
		cs.Coalesced++
		span.SetAttr("cache", "coalesced")
	default:
		cs.Misses++
		span.SetAttr("cache", "miss")
	}
	snap := cache.Stats()
	cs.Entries, cs.Bytes, cs.Capacity = snap.Entries, snap.Bytes, snap.Capacity
	return m, nil
}

// overlapChain runs Module 2 of Fig 3 over the given diagrams: the
// sequential left fold of Eq 27, or the parallel overlap engine (sharded
// sweeps within each ⊕, balanced reduction across the chain) when
// Workers > 1. Both produce the same final diagram; the parallel path's
// statistics depend on sharding and reduction shape.
func (in *Input) overlapChain(mode core.Mode, prune core.PruneFunc, movds []*core.MOVD, stats *core.OverlapStats, span *obs.Span) (*core.MOVD, error) {
	if in.Workers > 1 {
		acc, st, err := core.ParallelOverlapPrunedSpan(in.Bounds, mode, in.Workers, prune, span, movds...)
		if err != nil {
			return nil, err
		}
		stats.Add(st)
		return acc, nil
	}
	acc := movds[0]
	for i, m := range movds[1:] {
		var sp *obs.Span
		if span != nil {
			sp = span.Child(fmt.Sprintf("⊕ %d", i+1))
		}
		next, st, err := core.OverlapPruned(acc, m, prune)
		if err != nil {
			return nil, err
		}
		stats.Add(st)
		sp.SetAttr("events", st.Events)
		sp.SetAttr("pairs", st.CandidatePairs)
		sp.SetAttr("ovrs", st.OutputOVRs)
		sp.End()
		acc = next
	}
	return acc, nil
}

// solveMOVD runs the three-module pipeline of Fig 3.
func solveMOVD(ctx context.Context, in Input, method Method) (Result, error) {
	mode := core.RRB
	if method == MBRB {
		mode = core.MBRB
	}
	res := Result{Method: method}
	var root *obs.Span
	if in.Trace {
		// StartSpanCtx joins the trace identity propagated in ctx (e.g. the
		// httpapi middleware's traceparent), so the span tree, access log
		// and flight recorder all share one trace ID.
		root = obs.StartSpanCtx(ctx, "solve/"+method.String())
		res.Stats.Trace = root
	}
	totalStart := time.Now()

	// Module 1: VD Generator (basic MOVDs, Property 7), memoized through the
	// fingerprinted diagram cache.
	vdSpan := root.Child("vd-build")
	vdStart := time.Now()
	basics, fps, cacheStats, err := in.buildBasics(method, mode, vdSpan)
	if err != nil {
		return res, err
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	res.Stats.VDTime = time.Since(vdStart)
	res.Stats.Cache = cacheStats
	vdSpan.SetAttr("cache_hits", cacheStats.Hits)
	vdSpan.SetAttr("cache_misses", cacheStats.Misses)
	vdSpan.EndWith(res.Stats.VDTime)

	// Module 2: MOVD Overlapper (⊕ chain, Eq 27), optionally with
	// combination pruning (Sec 8). With SpillDir the final — largest —
	// overlap streams to disk instead of materialising.
	ovSpan := root.Child("overlap")
	ovStart := time.Now()
	var prune core.PruneFunc
	if in.PruneOverlap {
		pruneSpan := ovSpan.Child("prune-bound")
		u := in.upperBound()
		pruneSpan.SetAttr("upper_bound", u)
		pruneSpan.End()
		prune = in.pruneFunc(u)
	}
	spillLast := in.SpillDir != "" && len(basics) >= 2
	inMemory := basics
	if spillLast {
		// The spilled final overlap streams to disk and is never materialised,
		// so the overlap-level cache does not apply (cachedOverlapChain sees a
		// partial chain and falls through).
		inMemory = basics[:len(basics)-1]
	}
	acc, err := in.cachedOverlapChain(mode, prune, inMemory, fps, &res.Stats.Overlap, &res.Stats.Cache, ovSpan)
	if err != nil {
		return res, err
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}
	if spillLast {
		return in.finishSpilled(ctx, res, acc, basics[len(basics)-1], prune, ovStart, totalStart, root, ovSpan)
	}
	res.Stats.OverlapTime = time.Since(ovStart)
	res.Stats.OVRs = acc.Len()
	res.Stats.PointsManaged = acc.PointsManaged()
	ovSpan.SetAttr("ovrs", res.Stats.OVRs)
	ovSpan.SortChildrenByStart()
	ovSpan.EndWith(res.Stats.OverlapTime)

	// Module 3: Optimizer (Sec 5.4).
	optSpan := root.Child("optimize")
	optStart := time.Now()
	combos := acc.Groups()
	groups := make([]fermat.Group, len(combos))
	offsets := make([]float64, len(combos))
	for i, c := range combos {
		groups[i], offsets[i] = in.toProblem(c)
	}
	res.Stats.Groups = len(groups)
	var batch fermat.BatchResult
	switch {
	case in.DisableCostBound:
		batch, err = fermat.SequentialBatchOffsetsCtx(ctx, groups, offsets, in.options())
	case in.Workers > 1:
		batch, err = fermat.CostBoundBatchParallelCtx(ctx, groups, offsets, in.options(), in.Workers)
	default:
		batch, err = fermat.CostBoundBatchOffsetsCtx(ctx, groups, offsets, in.options())
	}
	if err != nil {
		return res, err
	}
	res.Stats.OptimizeTime = time.Since(optStart)
	res.Stats.Fermat = batch.Stats
	optSpan.SetAttr("groups", res.Stats.Groups)
	optSpan.SetAttr("weiszfeld_iters", batch.Stats.TotalIters)
	optSpan.SetAttr("prefiltered", batch.Stats.Prefiltered)
	optSpan.EndWith(res.Stats.OptimizeTime)
	res.Loc = batch.Loc
	res.Cost = batch.Cost
	res.Stats.TotalTime = time.Since(totalStart)
	root.EndWith(res.Stats.TotalTime)
	return res, nil
}

func ordinaryBasic(set []core.Object, ti int, bounds geom.Rect, mode core.Mode) (*core.MOVD, error) {
	sites := make([]geom.Point, len(set))
	for i, o := range set {
		sites[i] = o.Loc
	}
	d, err := voronoi.Compute(sites, bounds)
	if err != nil {
		return nil, fmt.Errorf("query: type %d: %w", ti, err)
	}
	return core.FromVoronoi(d, set, ti, mode)
}

// weightedApproxMinSites is the automatic-mode crossover. Below it the exact
// O(n²) Apollonius pair construction wins end to end — measured at two
// weighted types the exact solve is 2.4× faster at n=1000 and breaks even
// near n≈2500 (the approximate path's tighter boxes claw back optimizer
// time, but not its prepare constant) — above it the near-linear mwvd
// refinement wins by a quadratically widening margin (14.5× prepare at 50k).
const weightedApproxMinSites = 2048

// weightedBasic realizes the MBRB basic diagram of a weighted object set.
// WeightedEpsilon picks the construction (see Input.WeightedEpsilon); both
// yield conservative per-site boxes, so MBRB correctness is identical — the
// approximate path may only admit extra Fermat-Weber candidates, bounded by ε.
func (in *Input) weightedBasic(set []core.Object, ti int, span *obs.Span) (*core.MOVD, error) {
	sites, metric := in.weightedSites(set, ti)
	approx := in.WeightedEpsilon > 0 ||
		(in.WeightedEpsilon == 0 && len(set) >= weightedApproxMinSites)
	var mbrs []geom.Rect
	if approx {
		m, _, err := mwvd.ApproxDominanceMBRs(sites, in.Bounds, mwvd.Options{
			Epsilon: in.WeightedEpsilon, // 0 → mwvd.AutoEpsilon
			Workers: in.Workers,
			Metric:  metric,
			Span:    span,
		})
		if err != nil {
			return nil, fmt.Errorf("query: type %d: %w", ti, err)
		}
		mbrs = m
	} else if in.kind(ti) == AdditiveObjWeights {
		mbrs = weighted.AdditiveDominanceMBRs(sites, in.Bounds)
	} else {
		mbrs = weighted.DominanceMBRsParallel(sites, in.Bounds, in.Workers)
	}
	return core.FromRegions(mbrs, set, ti, in.Bounds)
}

// weightedCellBasic realizes the RRB basic diagram of a weighted object set:
// the approximate MWVD is built tree-mode and its refined leaf cells —
// sibling quartets merged — are clipped into rectangular OVR regions, one
// per (cell, surviving object). The cells conservatively cover each object's
// true dominance region, so the overlap keeps every true combination; extra
// ambiguous-cell overlaps only add false-positive combinations, which the
// optimizer already tolerates (they can never cost less than the optimum).
// Always approximate: curved weighted boundaries have no exact polygonal
// form, so the 2048-site MBRB crossover does not apply here.
func (in *Input) weightedCellBasic(set []core.Object, ti int, span *obs.Span) (*core.MOVD, error) {
	sites, metric := in.weightedSites(set, ti)
	d, err := mwvd.Build(sites, in.Bounds, mwvd.Options{
		Epsilon: in.WeightedEpsilon, // 0 → mwvd.AutoEpsilon
		Workers: in.Workers,
		Metric:  metric,
		Span:    span,
	})
	if err != nil {
		return nil, fmt.Errorf("query: type %d: %w", ti, err)
	}
	var cells []core.CellRegion
	d.EachLeaf(func(rect geom.Rect, leafSites []int32) {
		for _, s := range leafSites {
			cells = append(cells, core.CellRegion{Rect: rect, Obj: int(s)})
		}
	})
	return core.FromCellRegions(cells, set, ti, in.Bounds)
}

// weightedSites converts an object set to weighted Voronoi generators plus
// the mwvd metric matching the set's object-weight family.
func (in *Input) weightedSites(set []core.Object, ti int) ([]weighted.Site, mwvd.Metric) {
	sites := make([]weighted.Site, len(set))
	for i, o := range set {
		sites[i] = weighted.Site{P: o.Loc, W: o.ObjWeight}
	}
	metric := mwvd.Multiplicative
	if in.kind(ti) == AdditiveObjWeights {
		metric = mwvd.Additive
	}
	return sites, metric
}

// solveSSC implements Algorithm 1. The two-point prefilter uses the exact
// two-point optimum (the heavier endpoint) as a lower bound on the full
// combination's optimal cost.
func solveSSC(ctx context.Context, in Input) (Result, error) {
	res := Result{Method: SSC}
	var root *obs.Span
	if in.Trace {
		root = obs.StartSpanCtx(ctx, "solve/SSC")
		res.Stats.Trace = root
	}
	optSpan := root.Child("optimize")
	start := time.Now()
	opt := in.options()
	idx := make([]int, len(in.Sets))
	group := make([]core.Object, len(in.Sets))
	best := Result{Cost: 0}
	ubound := math.Inf(1)
	done := ctx.Done()
	for {
		if done != nil && res.Stats.Combinations%64 == 0 {
			select {
			case <-done:
				return res, ctx.Err()
			default:
			}
		}
		for ti, set := range in.Sets {
			group[ti] = set[idx[ti]]
		}
		res.Stats.Combinations++
		g, off := in.toProblem(group)
		skip := false
		if !in.DisableCostBound && !math.IsInf(ubound, 1) && len(g) >= 3 {
			// Alg 1 lines 4-5: optimal location of the first two objects.
			// Skip only on a strictly greater lower bound, matching the
			// streaming optimizer's tie handling (fermat.Streamer.Offer), so
			// SSC and Algorithm 5 prune identically on exact ties.
			two, err := fermat.Solve(g[:2], opt)
			if err != nil {
				return res, err
			}
			if two.Cost+off > ubound {
				skip = true
			}
		}
		if !skip {
			bound := math.Inf(1)
			if !in.DisableCostBound {
				bound = ubound - off
			}
			sol, err := fermat.SolveBounded(g, opt, bound)
			if err != nil {
				return res, err
			}
			res.Stats.Fermat.Problems++
			res.Stats.Fermat.TotalIters += sol.Iters
			if sol.Pruned {
				res.Stats.Fermat.PrunedGroups++
			} else if cost := sol.Cost + off; cost < ubound {
				ubound = cost
				best.Loc = sol.Loc
				best.Cost = cost
			}
		} else {
			res.Stats.Fermat.Prefiltered++
		}
		// Advance the odometer over P_1 × … × P_n.
		k := len(idx) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(in.Sets[k]) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}
	res.Loc = best.Loc
	res.Cost = best.Cost
	res.Stats.Groups = res.Stats.Fermat.Problems
	d := time.Since(start)
	res.Stats.OptimizeTime = d
	res.Stats.TotalTime = d
	optSpan.SetAttr("combinations", res.Stats.Combinations)
	optSpan.SetAttr("problems", res.Stats.Fermat.Problems)
	optSpan.SetAttr("prefiltered", res.Stats.Fermat.Prefiltered)
	optSpan.EndWith(d)
	root.EndWith(d)
	return res, nil
}
