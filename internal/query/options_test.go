package query

import (
	"math"
	"math/rand"
	"testing"
)

func TestPruneOverlapPreservesResult(t *testing.T) {
	r := rand.New(rand.NewSource(111))
	for trial := 0; trial < 6; trial++ {
		in := randomInput(r, []int{4 + r.Intn(8), 4 + r.Intn(8), 4 + r.Intn(8)}, true)
		base, err := Solve(in, RRB)
		if err != nil {
			t.Fatal(err)
		}
		in.PruneOverlap = true
		pruned, err := Solve(in, RRB)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(pruned.Cost-base.Cost) / math.Max(base.Cost, 1); rel > 1e-6 {
			t.Fatalf("trial %d: pruning changed the optimum: %v vs %v", trial, pruned.Cost, base.Cost)
		}
		if pruned.Stats.OVRs > base.Stats.OVRs {
			t.Fatalf("trial %d: pruning grew the MOVD (%d > %d)", trial, pruned.Stats.OVRs, base.Stats.OVRs)
		}
		mbrbBase, err := Solve(Input{Sets: in.Sets, Bounds: in.Bounds, Epsilon: in.Epsilon}, MBRB)
		if err != nil {
			t.Fatal(err)
		}
		mbrbPruned, err := Solve(in, MBRB)
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(mbrbPruned.Cost-mbrbBase.Cost) / math.Max(mbrbBase.Cost, 1); rel > 1e-6 {
			t.Fatalf("trial %d MBRB: pruning changed the optimum: %v vs %v",
				trial, mbrbPruned.Cost, mbrbBase.Cost)
		}
	}
}

func TestPruneOverlapActuallyPrunes(t *testing.T) {
	r := rand.New(rand.NewSource(222))
	// Larger sets make far-apart combinations abundant.
	in := randomInput(r, []int{30, 30, 30}, false)
	in.PruneOverlap = true
	res, err := Solve(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Overlap.PrunedOVRs == 0 {
		t.Fatal("expected at least one pruned OVR on a 30x30x30 instance")
	}
	noPrune, err := Solve(Input{Sets: in.Sets, Bounds: in.Bounds, Epsilon: in.Epsilon}, RRB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Groups >= noPrune.Stats.Groups {
		t.Fatalf("pruning should reduce Fermat-Weber problems: %d vs %d",
			res.Stats.Groups, noPrune.Stats.Groups)
	}
}

func TestParallelWorkersPreserveResult(t *testing.T) {
	r := rand.New(rand.NewSource(333))
	in := randomInput(r, []int{12, 10, 14}, true)
	seq, err := Solve(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	in.Workers = 4
	par, err := Solve(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(par.Cost-seq.Cost) / seq.Cost; rel > 1e-6 {
		t.Fatalf("parallel result %v vs sequential %v", par.Cost, seq.Cost)
	}
	// Weighted (MBRB) path under parallel VD generation.
	in2 := additiveInput(r, []int{5, 5, 5})
	in2.Workers = 3
	parw, err := Solve(in2, MBRB)
	if err != nil {
		t.Fatal(err)
	}
	in2.Workers = 0
	seqw, err := Solve(in2, MBRB)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(parw.Cost-seqw.Cost) / seqw.Cost; rel > 1e-6 {
		t.Fatalf("parallel weighted result %v vs sequential %v", parw.Cost, seqw.Cost)
	}
}

func TestParallelRRBRejectionStillWorks(t *testing.T) {
	r := rand.New(rand.NewSource(444))
	in := additiveInput(r, []int{4, 4})
	in.Workers = 4
	in.WeightedEpsilon = -1 // force exact: the only mode weighted RRB rejects
	if _, err := Solve(in, RRB); err == nil {
		t.Fatal("parallel exact-forced RRB with weighted objects should still be rejected")
	}
	// Auto mode must instead answer via approximate weighted cells and agree
	// with the weighted MBRB path on the optimum.
	in.WeightedEpsilon = 0
	rrb, err := Solve(in, RRB)
	if err != nil {
		t.Fatal(err)
	}
	mbrb, err := Solve(in, MBRB)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(rrb.Cost-mbrb.Cost) / math.Max(1, mbrb.Cost); rel > 1e-6 {
		t.Fatalf("weighted RRB cost %v vs MBRB %v", rrb.Cost, mbrb.Cost)
	}
}
