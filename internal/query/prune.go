package query

import (
	"math"

	"molq/internal/core"
	"molq/internal/geom"
)

// mwgdAt evaluates the query objective (Eq 3 with the configured weight
// function families) at an arbitrary location by linear scan — used to seed
// the overlap-pruning upper bound.
func (in *Input) mwgdAt(q geom.Point) float64 {
	total := 0.0
	for ti, set := range in.Sets {
		additive := in.kind(ti) == AdditiveObjWeights
		best := math.Inf(1)
		for _, o := range set {
			var v float64
			if additive {
				v = o.TypeWeight * (q.Dist(o.Loc) + o.ObjWeight)
			} else {
				v = o.TypeWeight * o.ObjWeight * q.Dist(o.Loc)
			}
			if v < best {
				best = v
			}
		}
		total += best
	}
	return total
}

// upperBoundSamples picks candidate locations whose MWGD values seed the
// pruning bound: the search-space center plus up to 16 object locations of
// the smallest set (object locations are natural candidates — the optimum
// gravitates toward them).
func (in *Input) upperBound() float64 {
	u := in.mwgdAt(in.Bounds.Center())
	smallest := 0
	for ti := range in.Sets {
		if len(in.Sets[ti]) < len(in.Sets[smallest]) {
			smallest = ti
		}
	}
	set := in.Sets[smallest]
	step := 1
	if len(set) > 16 {
		step = len(set) / 16
	}
	for i := 0; i < len(set); i += step {
		if v := in.mwgdAt(set[i].Loc); v < u {
			u = v
		}
	}
	return u
}

// rectDist returns the distance from the nearest point of r to p.
func rectDist(r geom.Rect, p geom.Point) float64 {
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// pruneFunc builds the overlap-time combination filter (the paper's Sec 8
// future-work optimisation): an OVR is discarded when even the most
// optimistic location inside its MBR costs more than the known upper bound
// of the optimum. The bound over a box uses the point-to-rectangle distance,
// which lower-bounds the true distance for every location in the box; for a
// partial combination the remaining types contribute ≥ 0, so the test stays
// sound mid-chain.
func (in *Input) pruneFunc(upper float64) core.PruneFunc {
	return func(mbr geom.Rect, pois []core.Object) bool {
		lb := 0.0
		for _, o := range pois {
			d := rectDist(mbr, o.Loc)
			if in.kind(o.Type) == AdditiveObjWeights {
				lb += o.TypeWeight * (d + o.ObjWeight)
			} else {
				lb += o.TypeWeight * o.ObjWeight * d
			}
			if lb > upper {
				return true
			}
		}
		return false
	}
}
