package network

import (
	"fmt"
	"math"
	"sort"

	"molq/internal/geom"
	"molq/internal/voronoi"
)

// FromDelaunay builds a synthetic planar road network over the given
// intersections: the edges are the Delaunay triangulation edges weighted by
// Euclidean length — a standard random-road-network model (connected,
// planar, realistic degree distribution).
func FromDelaunay(coords []geom.Point) (*Graph, error) {
	g := NewGraph(coords)
	edges, err := voronoi.DelaunayEdges(coords)
	if err != nil {
		return nil, err
	}
	for _, e := range edges {
		w := coords[e[0]].Dist(coords[e[1]])
		if w == 0 {
			continue // coincident intersections
		}
		if err := g.AddEdge(int(e[0]), int(e[1]), w); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// VoronoiPartition is a network Voronoi diagram: every node labelled with
// its closest site (by network distance) and that distance.
type VoronoiPartition struct {
	// Sites are the generator node ids.
	Sites []int
	// Owner[v] is the index into Sites of node v's nearest site (-1 if
	// unreachable); Dist[v] the network distance to it.
	Owner []int
	Dist  []float64
}

// NetworkVoronoi computes the network Voronoi partition of the graph for the
// given site nodes with one multi-source Dijkstra.
func NetworkVoronoi(g *Graph, sites []int) (*VoronoiPartition, error) {
	if len(sites) == 0 {
		return nil, fmt.Errorf("network: no sites")
	}
	for _, s := range sites {
		if s < 0 || s >= g.NumNodes() {
			return nil, fmt.Errorf("network: site node %d out of range", s)
		}
	}
	dist, owner := g.MultiSourceDijkstra(sites)
	return &VoronoiPartition{Sites: append([]int(nil), sites...), Owner: owner, Dist: dist}, nil
}

// TypeSites describes one object type on the network: the nodes hosting its
// objects and the type weight w^t applied to network distance.
type TypeSites struct {
	Nodes  []int
	Weight float64
}

// Result is the answer to a node-candidate network MOLQ.
type Result struct {
	Node int
	Cost float64
	// PerType[i] is the weighted network distance from Node to the nearest
	// site of type i.
	PerType []float64
}

// SolveNodeMOLQ finds the graph node minimising Σ_i w_i · netdist(v, P_i)
// where netdist is the distance to the nearest site of type i — the
// network analogue of the paper's MOLQ with candidates restricted to graph
// vertices (as in the min-dist location selection literature the paper
// surveys). It runs one multi-source Dijkstra per type: O(T·(E+V) log V).
// Nodes that cannot reach every type are excluded; if no node qualifies an
// error is returned.
func SolveNodeMOLQ(g *Graph, types []TypeSites) (Result, error) {
	if len(types) == 0 {
		return Result{}, fmt.Errorf("network: no object types")
	}
	n := g.NumNodes()
	if n == 0 {
		return Result{}, fmt.Errorf("network: empty graph")
	}
	total := make([]float64, n)
	perType := make([][]float64, len(types))
	for ti, ts := range types {
		if len(ts.Nodes) == 0 {
			return Result{}, fmt.Errorf("network: type %d has no sites", ti)
		}
		if ts.Weight <= 0 {
			return Result{}, fmt.Errorf("network: type %d has non-positive weight", ti)
		}
		dist, _ := g.MultiSourceDijkstra(ts.Nodes)
		perType[ti] = dist
		for v := range total {
			total[v] += ts.Weight * dist[v]
		}
	}
	best, bestCost := -1, math.Inf(1)
	for v, c := range total {
		if c < bestCost {
			best, bestCost = v, c
		}
	}
	if best < 0 || math.IsInf(bestCost, 1) {
		return Result{}, fmt.Errorf("network: no node reaches every object type")
	}
	res := Result{Node: best, Cost: bestCost, PerType: make([]float64, len(types))}
	for ti := range types {
		res.PerType[ti] = types[ti].Weight * perType[ti][best]
	}
	return res, nil
}

// RankNodes returns the k best candidate nodes by the same objective,
// ascending by cost (useful for presenting alternatives).
func RankNodes(g *Graph, types []TypeSites, k int) ([]Result, error) {
	if k <= 0 {
		return nil, nil
	}
	if len(types) == 0 {
		return nil, fmt.Errorf("network: no object types")
	}
	n := g.NumNodes()
	total := make([]float64, n)
	perType := make([][]float64, len(types))
	for ti, ts := range types {
		if len(ts.Nodes) == 0 {
			return nil, fmt.Errorf("network: type %d has no sites", ti)
		}
		if ts.Weight <= 0 {
			return nil, fmt.Errorf("network: type %d has non-positive weight", ti)
		}
		dist, _ := g.MultiSourceDijkstra(ts.Nodes)
		perType[ti] = dist
		for v := range total {
			total[v] += ts.Weight * dist[v]
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return total[order[a]] < total[order[b]] })
	var out []Result
	for _, v := range order {
		if math.IsInf(total[v], 1) {
			break
		}
		r := Result{Node: v, Cost: total[v], PerType: make([]float64, len(types))}
		for ti := range types {
			r.PerType[ti] = types[ti].Weight * perType[ti][v]
		}
		out = append(out, r)
		if len(out) == k {
			break
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("network: no node reaches every object type")
	}
	return out, nil
}
