package network

import (
	"math"
	"math/rand"
	"testing"

	"molq/internal/geom"
)

// lineGraph builds a path 0-1-2-...-n-1 with unit edges.
func lineGraph(t *testing.T, n int) *Graph {
	t.Helper()
	coords := make([]geom.Point, n)
	for i := range coords {
		coords[i] = geom.Pt(float64(i), 0)
	}
	g := NewGraph(coords)
	for i := 0; i+1 < n; i++ {
		if err := g.AddEdge(i, i+1, 1); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph([]geom.Point{{}, {X: 1}})
	if err := g.AddEdge(0, 0, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge(0, 5, 1); err == nil {
		t.Fatal("out of range accepted")
	}
	if err := g.AddEdge(0, 1, -2); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := g.AddEdge(0, 1, math.Inf(1)); err == nil {
		t.Fatal("infinite weight accepted")
	}
	if err := g.AddEdge(0, 1, 3); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 || g.NumNodes() != 2 {
		t.Fatalf("counts: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
}

func TestDijkstraLine(t *testing.T) {
	g := lineGraph(t, 10)
	d := g.Dijkstra(3)
	for i := 0; i < 10; i++ {
		want := math.Abs(float64(i - 3))
		if math.Abs(d[i]-want) > 1e-12 {
			t.Fatalf("d[%d] = %v, want %v", i, d[i], want)
		}
	}
}

// floydWarshall is the brute-force all-pairs ground truth.
func floydWarshall(g *Graph) [][]float64 {
	n := g.NumNodes()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = math.Inf(1)
			}
		}
		g.Neighbors(i, func(v int, w float64) {
			if w < d[i][v] {
				d[i][v] = w
			}
		})
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if nd := d[i][k] + d[k][j]; nd < d[i][j] {
					d[i][j] = nd
				}
			}
		}
	}
	return d
}

func randomGraph(t *testing.T, r *rand.Rand, n int) *Graph {
	t.Helper()
	coords := make([]geom.Point, n)
	for i := range coords {
		coords[i] = geom.Pt(r.Float64()*100, r.Float64()*100)
	}
	g, err := FromDelaunay(coords)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := randomGraph(t, r, 60)
	fw := floydWarshall(g)
	for s := 0; s < g.NumNodes(); s += 7 {
		d := g.Dijkstra(s)
		for v := range d {
			if math.Abs(d[v]-fw[s][v]) > 1e-9 {
				t.Fatalf("dist(%d,%d) = %v, want %v", s, v, d[v], fw[s][v])
			}
		}
	}
}

func TestMultiSourceEqualsMinOfSingles(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g := randomGraph(t, r, 80)
	sources := []int{3, 17, 42}
	multi, owner := g.MultiSourceDijkstra(sources)
	singles := make([][]float64, len(sources))
	for i, s := range sources {
		singles[i] = g.Dijkstra(s)
	}
	for v := 0; v < g.NumNodes(); v++ {
		best, bestI := math.Inf(1), -1
		for i := range sources {
			if singles[i][v] < best {
				best, bestI = singles[i][v], i
			}
		}
		if math.Abs(multi[v]-best) > 1e-9 {
			t.Fatalf("node %d: multi %v vs min singles %v", v, multi[v], best)
		}
		// Owner must achieve the minimum (ties can differ).
		if math.Abs(singles[owner[v]][v]-best) > 1e-9 {
			t.Fatalf("node %d: owner %d not optimal", v, owner[v])
		}
		_ = bestI
	}
}

func TestDisconnectedGraph(t *testing.T) {
	g := NewGraph([]geom.Point{{}, {X: 1}, {X: 10}, {X: 11}})
	if err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3, 1); err != nil {
		t.Fatal(err)
	}
	d, owner := g.MultiSourceDijkstra([]int{0})
	if !math.IsInf(d[2], 1) || owner[2] != -1 {
		t.Fatalf("unreachable node: d=%v owner=%d", d[2], owner[2])
	}
	// MOLQ with one type per component fails: no node reaches both.
	_, err := SolveNodeMOLQ(g, []TypeSites{
		{Nodes: []int{0}, Weight: 1},
		{Nodes: []int{2}, Weight: 1},
	})
	if err == nil {
		t.Fatal("cross-component MOLQ should fail")
	}
}

func TestNetworkVoronoi(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := randomGraph(t, r, 120)
	sites := []int{5, 50, 100}
	part, err := NetworkVoronoi(g, sites)
	if err != nil {
		t.Fatal(err)
	}
	// Every node owned; sites own themselves at distance 0.
	for v := 0; v < g.NumNodes(); v++ {
		if part.Owner[v] < 0 {
			t.Fatalf("node %d unowned (Delaunay graphs are connected)", v)
		}
	}
	for si, s := range sites {
		if part.Owner[s] != si || part.Dist[s] != 0 {
			t.Fatalf("site %d: owner %d dist %v", s, part.Owner[s], part.Dist[s])
		}
	}
	// Ownership is the argmin over single-source distances.
	for _, s := range sites {
		_ = s
	}
	singles := make([][]float64, len(sites))
	for i, s := range sites {
		singles[i] = g.Dijkstra(s)
	}
	for v := 0; v < g.NumNodes(); v++ {
		got := singles[part.Owner[v]][v]
		for i := range sites {
			if singles[i][v] < got-1e-9 {
				t.Fatalf("node %d: owner %d not nearest", v, part.Owner[v])
			}
		}
	}
	if _, err := NetworkVoronoi(g, nil); err == nil {
		t.Fatal("empty site list should fail")
	}
	if _, err := NetworkVoronoi(g, []int{-1}); err == nil {
		t.Fatal("bad site node should fail")
	}
}

func TestSolveNodeMOLQMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	g := randomGraph(t, r, 70)
	types := []TypeSites{
		{Nodes: []int{2, 33}, Weight: 2},
		{Nodes: []int{10, 55, 60}, Weight: 1},
		{Nodes: []int{40}, Weight: 3},
	}
	res, err := SolveNodeMOLQ(g, types)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force with Floyd-Warshall.
	fw := floydWarshall(g)
	bestV, bestC := -1, math.Inf(1)
	for v := 0; v < g.NumNodes(); v++ {
		c := 0.0
		for _, ts := range types {
			near := math.Inf(1)
			for _, s := range ts.Nodes {
				if fw[v][s] < near {
					near = fw[v][s]
				}
			}
			c += ts.Weight * near
		}
		if c < bestC {
			bestV, bestC = v, c
		}
	}
	if math.Abs(res.Cost-bestC) > 1e-9 {
		t.Fatalf("cost %v (node %d), brute force %v (node %d)", res.Cost, res.Node, bestC, bestV)
	}
	sum := 0.0
	for _, p := range res.PerType {
		sum += p
	}
	if math.Abs(sum-res.Cost) > 1e-9 {
		t.Fatalf("per-type breakdown %v does not sum to cost %v", res.PerType, res.Cost)
	}
}

func TestRankNodes(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := randomGraph(t, r, 50)
	types := []TypeSites{
		{Nodes: []int{1, 20}, Weight: 1},
		{Nodes: []int{35}, Weight: 2},
	}
	ranked, err := RankNodes(g, types, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 5 {
		t.Fatalf("got %d ranked nodes", len(ranked))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Cost < ranked[i-1].Cost {
			t.Fatal("ranking not ascending")
		}
	}
	best, err := SolveNodeMOLQ(g, types)
	if err != nil {
		t.Fatal(err)
	}
	if ranked[0].Cost != best.Cost {
		t.Fatalf("rank[0] %v != solve %v", ranked[0].Cost, best.Cost)
	}
	if out, _ := RankNodes(g, types, 0); out != nil {
		t.Fatal("k=0 should return nil")
	}
}

func TestSolveNodeMOLQValidation(t *testing.T) {
	g := lineGraph(t, 3)
	if _, err := SolveNodeMOLQ(g, nil); err == nil {
		t.Fatal("no types should fail")
	}
	if _, err := SolveNodeMOLQ(g, []TypeSites{{Nodes: nil, Weight: 1}}); err == nil {
		t.Fatal("empty type should fail")
	}
	if _, err := SolveNodeMOLQ(g, []TypeSites{{Nodes: []int{0}, Weight: 0}}); err == nil {
		t.Fatal("zero weight should fail")
	}
}

func TestFromDelaunayConnectedAndPlanarish(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	g := randomGraph(t, r, 500)
	// Delaunay on n points has at most 3n-6 edges.
	if g.NumEdges() > 3*g.NumNodes()-6 {
		t.Fatalf("too many edges: %d for %d nodes", g.NumEdges(), g.NumNodes())
	}
	// Connected: one Dijkstra reaches everything.
	d := g.Dijkstra(0)
	for v, dv := range d {
		if math.IsInf(dv, 1) {
			t.Fatalf("node %d unreachable", v)
		}
	}
}

func TestNearestNode(t *testing.T) {
	g := lineGraph(t, 5)
	if got := g.NearestNode(geom.Pt(2.4, 1)); got != 2 {
		t.Fatalf("NearestNode = %d", got)
	}
}
