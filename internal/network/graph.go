// Package network extends MOLQ to road networks, the setting the paper's
// related work singles out ("user movements are usually confined to
// underlying spatial networks in practice" — Sec 7.2, citing Xiao et al.'s
// optimal location queries in road network databases and Qi et al.'s
// min-dist location selection). It provides:
//
//   - a weighted undirected graph with embedded node coordinates,
//   - single- and multi-source Dijkstra,
//   - network Voronoi partitions (each node assigned to its nearest site),
//   - the node-candidate MOLQ: the graph vertex minimising the sum of
//     weighted network distances to the nearest object of each type.
//
// The Euclidean pipeline remains the paper's contribution; this package is
// the related-work baseline implemented on the same object model.
package network

import (
	"container/heap"
	"fmt"
	"math"

	"molq/internal/geom"
)

// Graph is an undirected graph with positive edge weights and embedded
// nodes. Build with NewGraph/AddEdge or FromDelaunay; not safe for
// concurrent mutation.
type Graph struct {
	coords []geom.Point
	adj    [][]halfEdge
	edges  int
}

type halfEdge struct {
	to int32
	w  float64
}

// NewGraph creates a graph over the given node coordinates and no edges.
func NewGraph(coords []geom.Point) *Graph {
	c := make([]geom.Point, len(coords))
	copy(c, coords)
	return &Graph{coords: c, adj: make([][]halfEdge, len(coords))}
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.coords) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int { return g.edges }

// Coord returns the embedding of node i.
func (g *Graph) Coord(i int) geom.Point { return g.coords[i] }

// AddEdge connects u and v with weight w (> 0). Parallel edges are allowed
// (Dijkstra simply ignores the longer one); self-loops are rejected.
func (g *Graph) AddEdge(u, v int, w float64) error {
	if u == v {
		return fmt.Errorf("network: self-loop at node %d", u)
	}
	if u < 0 || v < 0 || u >= len(g.coords) || v >= len(g.coords) {
		return fmt.Errorf("network: edge (%d,%d) out of range", u, v)
	}
	if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("network: edge (%d,%d) has invalid weight %v", u, v, w)
	}
	g.adj[u] = append(g.adj[u], halfEdge{to: int32(v), w: w})
	g.adj[v] = append(g.adj[v], halfEdge{to: int32(u), w: w})
	g.edges++
	return nil
}

// Neighbors calls fn for every edge incident to u.
func (g *Graph) Neighbors(u int, fn func(v int, w float64)) {
	for _, e := range g.adj[u] {
		fn(int(e.to), e.w)
	}
}

// dijkstraItem is a heap entry.
type dijkstraItem struct {
	node int32
	dist float64
}

type dijkstraHeap []dijkstraItem

func (h dijkstraHeap) Len() int           { return len(h) }
func (h dijkstraHeap) Less(i, j int) bool { return h[i].dist < h[j].dist }
func (h dijkstraHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *dijkstraHeap) Push(x any)        { *h = append(*h, x.(dijkstraItem)) }
func (h *dijkstraHeap) Pop() any          { o := *h; n := len(o); it := o[n-1]; *h = o[:n-1]; return it }

// MultiSourceDijkstra returns, for every node, the shortest network distance
// to any of the sources and the index (into sources) of the winning source.
// Unreachable nodes get +Inf distance and source -1.
func (g *Graph) MultiSourceDijkstra(sources []int) (dist []float64, owner []int) {
	n := len(g.coords)
	dist = make([]float64, n)
	owner = make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		owner[i] = -1
	}
	h := make(dijkstraHeap, 0, len(sources))
	for si, s := range sources {
		if s < 0 || s >= n {
			continue
		}
		if dist[s] > 0 {
			dist[s] = 0
			owner[s] = si
			h = append(h, dijkstraItem{node: int32(s), dist: 0})
		}
	}
	heap.Init(&h)
	for h.Len() > 0 {
		it := heap.Pop(&h).(dijkstraItem)
		u := int(it.node)
		if it.dist > dist[u] {
			continue // stale entry
		}
		for _, e := range g.adj[u] {
			v := int(e.to)
			if nd := it.dist + e.w; nd < dist[v] {
				dist[v] = nd
				owner[v] = owner[u]
				heap.Push(&h, dijkstraItem{node: e.to, dist: nd})
			}
		}
	}
	return dist, owner
}

// Dijkstra returns shortest distances from a single source.
func (g *Graph) Dijkstra(source int) []float64 {
	d, _ := g.MultiSourceDijkstra([]int{source})
	return d
}

// NearestNode returns the node whose embedding is closest to p (linear
// scan; wrap the coords in a kd-tree for repeated snapping).
func (g *Graph) NearestNode(p geom.Point) int {
	best, bestD := -1, math.Inf(1)
	for i, c := range g.coords {
		if d := p.Dist2(c); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}
