package stats

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22222")
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	// Columns align: header and rows share the position of column 2.
	hdr := lines[1]
	row := lines[3]
	if strings.Index(hdr, "value") != strings.Index(row, "1") {
		t.Fatalf("misaligned table:\n%s", out)
	}
}

func TestAddRowf(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRowf("%d\t%s", 7, "x")
	if !strings.Contains(tb.String(), "7") {
		t.Fatal("AddRowf row missing")
	}
}

func TestAddRowPadding(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRow("only")
	if tb.Rows() != 1 {
		t.Fatal("row not added")
	}
	tb.AddRow("1", "2", "3", "4") // extra cell dropped
	if strings.Contains(tb.String(), "4") {
		t.Fatal("extra cell should be dropped")
	}
}

func TestMarshalJSON(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.AddRow("1", "x,y") // comma must survive JSON
	raw, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Title != "T" || len(got.Columns) != 2 || got.Rows[0][1] != "x,y" {
		t.Fatalf("round trip: %+v", got)
	}
	// Empty table encodes rows as [] not null.
	raw, _ = json.Marshal(NewTable("", "c"))
	if strings.Contains(string(raw), "null") {
		t.Fatalf("empty table encodes null: %s", raw)
	}
}

func TestRenderCSV(t *testing.T) {
	tb := NewTable("Title", "a", "b")
	tb.AddRow("1", "with,comma")
	tb.AddRow("2", `with"quote`)
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "# Title\n") {
		t.Fatalf("missing title comment:\n%s", out)
	}
	if !strings.Contains(out, `"with,comma"`) {
		t.Fatalf("comma not quoted:\n%s", out)
	}
	if !strings.Contains(out, `"with""quote"`) {
		t.Fatalf("quote not escaped:\n%s", out)
	}
}

func TestDur(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{500 * time.Nanosecond, "500ns"},
		{1500 * time.Nanosecond, "1.5µs"},
		{2500 * time.Microsecond, "2.50ms"},
		{1500 * time.Millisecond, "1.500s"},
	}
	for _, c := range cases {
		if got := Dur(c.d); got != c.want {
			t.Fatalf("Dur(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(10*time.Second, 2*time.Second); got != "5.0x" {
		t.Fatalf("Speedup = %q", got)
	}
	if got := Speedup(time.Second, 0); got != "-" {
		t.Fatalf("Speedup zero = %q", got)
	}
}

func TestBytes(t *testing.T) {
	if got := Bytes(512); got != "512B" {
		t.Fatalf("Bytes = %q", got)
	}
	if got := Bytes(2048); got != "2.0KiB" {
		t.Fatalf("Bytes = %q", got)
	}
	if got := Bytes(3 * 1024 * 1024); got != "3.0MiB" {
		t.Fatalf("Bytes = %q", got)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(1, 2)
	s.Add(3, 4)
	if len(s.X) != 2 || s.Y[1] != 4 {
		t.Fatalf("series = %+v", s)
	}
}

func TestHeapDelta(t *testing.T) {
	var sink []byte
	d := HeapDelta(func() {
		sink = make([]byte, 8<<20)
		for i := range sink {
			sink[i] = byte(i)
		}
	})
	if d < 4<<20 {
		t.Fatalf("HeapDelta = %d, want ≥ 4MiB", d)
	}
	runtime.KeepAlive(sink)
}
