// Package stats holds the small measurement and reporting toolkit shared by
// the experiment drivers: aligned text tables (the "rows the paper reports"),
// named series, and memory measurement helpers.
package stats

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"
)

// Table renders aligned monospace tables.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; missing cells render empty, extra cells are dropped.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values.
func (t *Table) AddRowf(format string, args ...any) {
	t.AddRow(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// MarshalJSON encodes the table as {"title": ..., "columns": [...],
// "rows": [[...], ...]} so molqbench -format json emits machine-readable
// results.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
	}{t.Title, t.Columns, rows})
}

// RenderCSV writes the table as RFC-4180 CSV (header row first; the title is
// emitted as a comment line).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Series is one named line of an experiment figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Dur formats a duration compactly for table cells.
func Dur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// Speedup formats a ratio like "12.3x"; returns "-" for a zero denominator.
func Speedup(base, other time.Duration) string {
	if other <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(base)/float64(other))
}

// Bytes formats byte counts with binary units.
func Bytes(n uint64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%dB", n)
	}
	div, exp := uint64(unit), 0
	for v := n / unit; v >= unit; v /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// HeapDelta runs f and returns the growth of live heap bytes it caused,
// measured after garbage collection on both sides. It is a coarse metric
// (matching the paper's "memory consumption" plots) — interpret comparatively.
func HeapDelta(f func()) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	f()
	runtime.GC()
	runtime.ReadMemStats(&after)
	if after.HeapAlloc < before.HeapAlloc {
		return 0
	}
	return after.HeapAlloc - before.HeapAlloc
}
