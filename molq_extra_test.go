package molq_test

import (
	"math"
	"testing"

	"molq"
)

func buildCityQuery() *molq.Query {
	q := molq.NewQuery(molq.NewRect(molq.Pt(0, 0), molq.Pt(1000, 1000)))
	for ti, name := range []string{"STM", "CH", "SCH"} {
		pts := molq.GeneratePOIs(name, 20, int64(ti+10), molq.NewRect(molq.Pt(0, 0), molq.Pt(1000, 1000)))
		objs := make([]molq.Object, len(pts))
		for i, p := range pts {
			objs[i] = molq.POI(p, float64(ti+1), 1)
		}
		q.AddType(name, objs...)
	}
	return q
}

// withOptions sets a query's options in place and returns it, so tests can
// build-and-configure in one expression.
func withOptions(q *molq.Query, opts molq.Options) *molq.Query {
	q.SetOptions(opts)
	return q
}

func TestPruningAndWorkersPreserveFacadeResult(t *testing.T) {
	base, err := withOptions(buildCityQuery(), molq.Options{Epsilon: 1e-6}).Solve(molq.RRB)
	if err != nil {
		t.Fatal(err)
	}
	tuned, err := withOptions(buildCityQuery(), molq.Options{
		Epsilon:      1e-6,
		Workers:      4,
		PruneOverlap: true,
	}).Solve(molq.RRB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tuned.Cost-base.Cost) > 1e-6*base.Cost {
		t.Fatalf("options changed the optimum: %v vs %v", tuned.Cost, base.Cost)
	}
	if tuned.Stats.OVRs > base.Stats.OVRs {
		t.Fatalf("pruning should not grow the MOVD: %d vs %d", tuned.Stats.OVRs, base.Stats.OVRs)
	}
}

func TestDisableCostBoundFacade(t *testing.T) {
	a, err := withOptions(buildCityQuery(), molq.Options{Epsilon: 1e-6}).Solve(molq.MBRB)
	if err != nil {
		t.Fatal(err)
	}
	b, err := withOptions(buildCityQuery(), molq.Options{Epsilon: 1e-6, DisableCostBound: true}).Solve(molq.MBRB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Cost-b.Cost) > 1e-4*a.Cost {
		t.Fatalf("cost bound changed the optimum: %v vs %v", a.Cost, b.Cost)
	}
	if b.Stats.Pruned != 0 {
		t.Fatalf("disabled bound should prune nothing, pruned %d", b.Stats.Pruned)
	}
}

func TestAdditiveWeightsFacade(t *testing.T) {
	q := molq.NewQuery(molq.NewRect(molq.Pt(0, 0), molq.Pt(100, 100)))
	ti := q.AddType("cafe",
		molq.POI(molq.Pt(10, 10), 1, 30), // heavy queueing penalty
		molq.POI(molq.Pt(90, 90), 1, 1),
	)
	q.SetAdditiveWeights(ti)
	res, err := q.Solve(molq.MBRB)
	if err != nil {
		t.Fatal(err)
	}
	// The low-penalty cafe wins despite symmetry.
	if res.Location != molq.Pt(90, 90) {
		t.Fatalf("additive optimum at %v", res.Location)
	}
	if math.Abs(res.Cost-1) > 1e-9 {
		t.Fatalf("cost %v, want the residual penalty 1", res.Cost)
	}
	if got := q.MWGD(molq.Pt(90, 90)); math.Abs(got-1) > 1e-9 {
		t.Fatalf("additive MWGD = %v", got)
	}
}

func TestTopKFacade(t *testing.T) {
	q := withOptions(buildCityQuery(), molq.Options{Epsilon: 1e-8})
	alts, err := q.TopK(molq.RRB, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(alts) != 4 {
		t.Fatalf("alternatives: %d", len(alts))
	}
	best, err := withOptions(buildCityQuery(), molq.Options{Epsilon: 1e-8}).Solve(molq.RRB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alts[0].Cost-best.Cost) > 1e-6*best.Cost {
		t.Fatalf("top-1 %v vs solve %v", alts[0].Cost, best.Cost)
	}
	for i := 1; i < len(alts); i++ {
		if alts[i].Cost < alts[i-1].Cost {
			t.Fatal("alternatives not ascending")
		}
	}
	if _, err := q.TopK(molq.SSC, 2); err == nil {
		t.Fatal("SSC TopK should fail")
	}
}

func TestEngineFacade(t *testing.T) {
	q := withOptions(buildCityQuery(), molq.Options{Epsilon: 1e-6})
	eng, err := q.Prepare(molq.RRB)
	if err != nil {
		t.Fatal(err)
	}
	if eng.Combinations() == 0 {
		t.Fatal("no combinations prepared")
	}
	res, err := eng.Solve([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := withOptions(buildCityQuery(), molq.Options{Epsilon: 1e-6}).Solve(molq.RRB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-cold.Cost) > 1e-6*cold.Cost {
		t.Fatalf("engine %v vs cold %v", res.Cost, cold.Cost)
	}
	if _, err := eng.Solve([]float64{1}); err == nil {
		t.Fatal("wrong weight count should fail")
	}
}
