package molq_test

import (
	"fmt"

	"molq"
)

// The basic flow: register object sets, pick a strategy, solve.
func Example() {
	q := molq.NewQuery(molq.NewRect(molq.Pt(0, 0), molq.Pt(100, 100)))
	q.AddType("school",
		molq.POI(molq.Pt(20, 30), 2, 1),
		molq.POI(molq.Pt(80, 40), 2, 1),
	)
	q.AddType("market",
		molq.POI(molq.Pt(10, 80), 1, 1),
		molq.POI(molq.Pt(60, 20), 1, 1),
	)
	q.SetOptions(molq.Options{Epsilon: 1e-9})
	res, err := q.Solve(molq.RRB)
	if err != nil {
		panic(err)
	}
	// The optimum sits on the heavier-weighted school at (80,40); the cost
	// is the distance to the nearest market, √800.
	fmt.Printf("optimum (%.0f, %.0f) cost %.2f\n", res.Location.X, res.Location.Y, res.Cost)
	// Output: optimum (80, 40) cost 28.28
}

// Scoring fixed candidate sites with the same criteria as the query.
func ExampleQuery_MWGD() {
	q := molq.NewQuery(molq.NewRect(molq.Pt(0, 0), molq.Pt(10, 10)))
	q.AddType("a", molq.POI(molq.Pt(0, 0), 1, 1))
	q.AddType("b", molq.POI(molq.Pt(10, 0), 1, 1))
	fmt.Printf("%.0f\n", q.MWGD(molq.Pt(5, 0)))
	// Output: 10
}

// A prepared Engine evaluates many type-weight scenarios against one
// precomputed overlapped Voronoi diagram.
func ExampleQuery_Prepare() {
	q := molq.NewQuery(molq.NewRect(molq.Pt(0, 0), molq.Pt(100, 100)))
	q.AddType("school",
		molq.POI(molq.Pt(10, 10), 1, 1),
		molq.POI(molq.Pt(90, 90), 1, 1),
	)
	q.AddType("market",
		molq.POI(molq.Pt(90, 10), 1, 1),
	)
	q.SetOptions(molq.Options{Epsilon: 1e-9})
	eng, err := q.Prepare(molq.RRB)
	if err != nil {
		panic(err)
	}
	for _, weights := range [][]float64{{1, 1}, {10, 1}} {
		res, err := eng.Solve(weights)
		if err != nil {
			panic(err)
		}
		fmt.Printf("weights %v -> (%.0f, %.0f)\n", weights, res.Location.X, res.Location.Y)
	}
	// With schools weighted 10x, the optimum snaps to a school.
	// Output:
	// weights [1 1] -> (90, 10)
	// weights [10 1] -> (10, 10)
}

// The weighted Fermat-Weber solver is exposed directly.
func ExampleFermatWeber() {
	loc, cost, err := molq.FermatWeber(
		[]molq.Point{molq.Pt(0, 0), molq.Pt(4, 0), molq.Pt(4, 0)},
		[]float64{1, 1, 1}, 1e-9)
	if err != nil {
		panic(err)
	}
	fmt.Printf("(%.0f, %.0f) cost %.0f\n", loc.X, loc.Y, cost)
	// Output: (4, 0) cost 4
}
