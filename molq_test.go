package molq_test

import (
	"math"
	"testing"

	"molq"
)

func TestQuickstartAllMethodsAgree(t *testing.T) {
	build := func() *molq.Query {
		q := molq.NewQuery(molq.NewRect(molq.Pt(0, 0), molq.Pt(100, 100)))
		q.AddType("school",
			molq.POI(molq.Pt(20, 30), 2, 1),
			molq.POI(molq.Pt(80, 40), 2, 1),
			molq.POI(molq.Pt(50, 75), 2, 1))
		q.AddType("market",
			molq.POI(molq.Pt(10, 80), 1, 1),
			molq.POI(molq.Pt(60, 20), 1, 1))
		q.AddType("busstop",
			molq.POI(molq.Pt(40, 50), 3, 1),
			molq.POI(molq.Pt(90, 90), 3, 1))
		q.SetOptions(molq.Options{Epsilon: 1e-6})
		return q
	}
	var costs []float64
	for _, m := range []molq.Method{molq.SSC, molq.RRB, molq.MBRB} {
		res, err := build().Solve(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		costs = append(costs, res.Cost)
		// The reported cost matches the MWGD of the reported location.
		if got := build().MWGD(res.Location); math.Abs(got-res.Cost) > 1e-6*res.Cost {
			t.Fatalf("%v: MWGD(loc)=%v, Cost=%v", m, got, res.Cost)
		}
		if res.Method != m {
			t.Fatalf("result method %v, want %v", res.Method, m)
		}
	}
	for _, c := range costs[1:] {
		if math.Abs(c-costs[0]) > 1e-3*costs[0] {
			t.Fatalf("methods disagree: %v", costs)
		}
	}
}

func TestPOIDefaults(t *testing.T) {
	q := molq.NewQuery(molq.NewRect(molq.Pt(0, 0), molq.Pt(10, 10)))
	ti := q.AddType("x", molq.Object{Loc: molq.Pt(5, 5)}) // zero weights default to 1
	if ti != 0 {
		t.Fatalf("first type index = %d", ti)
	}
	res, err := q.Solve(molq.SSC)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 || res.Location != molq.Pt(5, 5) {
		t.Fatalf("single object query: %+v", res)
	}
}

func TestTypeNames(t *testing.T) {
	q := molq.NewQuery(molq.NewRect(molq.Pt(0, 0), molq.Pt(1, 1)))
	q.AddType("a", molq.POI(molq.Pt(0.5, 0.5), 1, 1))
	q.AddType("b", molq.POI(molq.Pt(0.2, 0.2), 1, 1))
	names := q.TypeNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("TypeNames = %v", names)
	}
	names[0] = "mutated"
	if q.TypeNames()[0] != "a" {
		t.Fatal("TypeNames leaked internal slice")
	}
}

func TestStatsExposed(t *testing.T) {
	q := molq.NewQuery(molq.DefaultBounds())
	for ti, name := range []string{"STM", "CH", "SCH"} {
		pts := molq.GeneratePOIs(name, 12, int64(ti+1), molq.DefaultBounds())
		objs := make([]molq.Object, len(pts))
		for i, p := range pts {
			objs[i] = molq.POI(p, 1, 1)
		}
		q.AddType(name, objs...)
	}
	res, err := q.Solve(molq.RRB)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.OVRs == 0 || res.Stats.Groups == 0 || res.Stats.PointsManaged == 0 {
		t.Fatalf("stats not populated: %+v", res.Stats)
	}
	ssc, err := q.Solve(molq.SSC)
	if err != nil {
		t.Fatal(err)
	}
	if ssc.Stats.Combinations != 12*12*12 {
		t.Fatalf("SSC combinations = %d, want %d", ssc.Stats.Combinations, 12*12*12)
	}
}

func TestVoronoiCells(t *testing.T) {
	cells, err := molq.VoronoiCells(
		[]molq.Point{molq.Pt(25, 50), molq.Pt(75, 50)},
		molq.NewRect(molq.Pt(0, 0), molq.Pt(100, 100)))
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("got %d cells", len(cells))
	}
	for i, c := range cells {
		if math.Abs(c.Area()-5000) > 1e-6 {
			t.Fatalf("cell %d area = %v", i, c.Area())
		}
	}
}

func TestFermatWeber(t *testing.T) {
	// Heavier point wins the 2-point problem.
	loc, cost, err := molq.FermatWeber(
		[]molq.Point{molq.Pt(0, 0), molq.Pt(10, 0)},
		[]float64{1, 9}, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if loc != molq.Pt(10, 0) || math.Abs(cost-10) > 1e-9 {
		t.Fatalf("loc=%v cost=%v", loc, cost)
	}
	// nil weights default to 1.
	loc, _, err = molq.FermatWeber([]molq.Point{molq.Pt(0, 0), molq.Pt(4, 0), molq.Pt(2, 3)}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if loc.X < 0 || loc.X > 4 || loc.Y < 0 || loc.Y > 3 {
		t.Fatalf("3-point optimum %v outside hull", loc)
	}
}

func TestGeneratePOIsDeterministic(t *testing.T) {
	b := molq.DefaultBounds()
	a := molq.GeneratePOIs("SCH", 50, 9, b)
	c := molq.GeneratePOIs("SCH", 50, 9, b)
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("GeneratePOIs not deterministic")
		}
	}
}

func TestErrorsPropagate(t *testing.T) {
	q := molq.NewQuery(molq.NewRect(molq.Pt(0, 0), molq.Pt(1, 1)))
	if _, err := q.Solve(molq.RRB); err == nil {
		t.Fatal("empty query should fail")
	}
	q.AddType("w",
		molq.POI(molq.Pt(0.1, 0.1), 1, 1),
		molq.POI(molq.Pt(0.9, 0.9), 1, 2)) // non-uniform object weights
	if _, err := q.Solve(molq.RRB); err != nil {
		t.Fatalf("RRB with weighted objects should answer via clipped cells: %v", err)
	}
	opts := q.Options()
	opts.WeightedEpsilon = -1 // force exact: weighted regions are curves, no RRB form
	q.SetOptions(opts)
	if _, err := q.Solve(molq.RRB); err == nil {
		t.Fatal("exact weighted RRB (WeightedEpsilon < 0) should fail")
	}
	q.SetOptions(molq.Options{})
	if _, err := q.Solve(molq.MBRB); err != nil {
		t.Fatalf("MBRB should handle weighted objects: %v", err)
	}
}
